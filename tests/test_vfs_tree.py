"""FileSystemTree: POSIX-ish operations, hard links, symlinks, whiteouts."""

import pytest

from repro.blob import Blob
from repro.common.errors import (
    FileExistsVfsError,
    IsADirectoryVfsError,
    NotADirectoryVfsError,
    NotFoundError,
    ReadOnlyVfsError,
    SymlinkLoopError,
    VfsError,
)
from repro.vfs.inode import FileKind, Metadata
from repro.vfs.tree import FileSystemTree


@pytest.fixture
def tree():
    t = FileSystemTree()
    t.mkdir("/usr/bin", parents=True)
    t.mkdir("/etc")
    t.write_file("/usr/bin/sh", b"#!shell")
    t.write_file("/etc/hosts", "127.0.0.1 localhost")
    return t


class TestCreation:
    def test_mkdir_and_listdir(self, tree):
        assert tree.listdir("/") == ["etc", "usr"]
        assert tree.listdir("/usr") == ["bin"]

    def test_mkdir_requires_parents(self):
        t = FileSystemTree()
        with pytest.raises(NotFoundError):
            t.mkdir("/a/b/c")

    def test_mkdir_parents(self):
        t = FileSystemTree()
        t.mkdir("/a/b/c", parents=True)
        assert t.is_dir("/a/b/c")

    def test_mkdir_exist_ok(self, tree):
        tree.mkdir("/usr", exist_ok=True)
        with pytest.raises(FileExistsVfsError):
            tree.mkdir("/usr")

    def test_mkdir_over_file_fails(self, tree):
        with pytest.raises(FileExistsVfsError):
            tree.mkdir("/etc/hosts", exist_ok=True)

    def test_write_file_accepts_str_bytes_blob(self, tree):
        tree.write_file("/etc/a", "text")
        tree.write_file("/etc/b", b"bytes")
        tree.write_file("/etc/c", Blob.from_bytes(b"blob"))
        assert tree.read_bytes("/etc/a") == b"text"
        assert tree.read_bytes("/etc/c") == b"blob"

    def test_write_file_rejects_other_types(self, tree):
        with pytest.raises(TypeError):
            tree.write_file("/etc/x", 42)

    def test_write_file_with_parents(self):
        t = FileSystemTree()
        t.write_file("/deep/path/file", b"x", parents=True)
        assert t.read_bytes("/deep/path/file") == b"x"

    def test_write_over_directory_fails(self, tree):
        with pytest.raises(IsADirectoryVfsError):
            tree.write_file("/usr/bin", b"nope")

    def test_overwrite_replaces_content(self, tree):
        tree.write_file("/etc/hosts", b"new")
        assert tree.read_bytes("/etc/hosts") == b"new"

    def test_metadata_applied(self, tree):
        inode = tree.write_file("/usr/bin/tool", b"x", meta=Metadata(mode=0o755))
        assert inode.meta.mode == 0o755


class TestQueries:
    def test_exists(self, tree):
        assert tree.exists("/etc/hosts")
        assert not tree.exists("/etc/missing")

    def test_stat_raises_on_missing(self, tree):
        with pytest.raises(NotFoundError):
            tree.stat("/nope")

    def test_is_file_is_dir(self, tree):
        assert tree.is_file("/etc/hosts")
        assert not tree.is_dir("/etc/hosts")
        assert tree.is_dir("/usr")

    def test_read_blob_of_dir_fails(self, tree):
        with pytest.raises(IsADirectoryVfsError):
            tree.read_blob("/usr")

    def test_listdir_of_file_fails(self, tree):
        with pytest.raises(NotADirectoryVfsError):
            tree.listdir("/etc/hosts")

    def test_lookup_through_file_component_fails(self, tree):
        with pytest.raises(NotADirectoryVfsError):
            tree.stat("/etc/hosts/sub")

    def test_walk_is_sorted_and_complete(self, tree):
        walked = [path for path, _ in tree.walk("/")]
        assert walked == sorted(walked)
        assert "/usr/bin/sh" in walked
        assert "/etc" in walked

    def test_iter_files(self, tree):
        files = dict(tree.iter_files("/"))
        assert set(files) == {"/usr/bin/sh", "/etc/hosts"}

    def test_count_nodes(self, tree):
        # /usr /usr/bin /usr/bin/sh /etc /etc/hosts
        assert tree.count_nodes() == 5


class TestSymlinks:
    def test_readlink(self, tree):
        tree.symlink("/usr/bin/shell", "sh")
        assert tree.readlink("/usr/bin/shell") == "sh"

    def test_follow_relative(self, tree):
        tree.symlink("/usr/bin/shell", "sh")
        assert tree.read_bytes("/usr/bin/shell") == b"#!shell"

    def test_follow_absolute(self, tree):
        tree.symlink("/etc/shell", "/usr/bin/sh")
        assert tree.read_bytes("/etc/shell") == b"#!shell"

    def test_follow_through_intermediate_symlink(self, tree):
        tree.symlink("/binlink", "/usr/bin")
        assert tree.read_bytes("/binlink/sh") == b"#!shell"

    def test_nofollow_stat(self, tree):
        tree.symlink("/etc/shell", "/usr/bin/sh")
        assert tree.stat("/etc/shell", follow_symlinks=False).is_symlink

    def test_loop_detection(self, tree):
        tree.symlink("/etc/a", "/etc/b")
        tree.symlink("/etc/b", "/etc/a")
        with pytest.raises(SymlinkLoopError):
            tree.read_bytes("/etc/a")

    def test_dangling_symlink_exists_nofollow_only(self, tree):
        tree.symlink("/etc/gone", "/nothing/here")
        assert tree.exists("/etc/gone", follow_symlinks=False)
        assert not tree.exists("/etc/gone")

    def test_readlink_on_file_fails(self, tree):
        with pytest.raises(VfsError):
            tree.readlink("/etc/hosts")

    def test_symlink_over_existing_fails(self, tree):
        with pytest.raises(FileExistsVfsError):
            tree.symlink("/etc/hosts", "elsewhere")


class TestHardLinks:
    def test_hardlink_shares_inode(self, tree):
        tree.hardlink("/usr/bin/sh2", "/usr/bin/sh")
        assert tree.stat("/usr/bin/sh2").ino == tree.stat("/usr/bin/sh").ino
        assert tree.stat("/usr/bin/sh").nlink == 2

    def test_hardlink_to_directory_fails(self, tree):
        with pytest.raises(IsADirectoryVfsError):
            tree.hardlink("/usrlink", "/usr")

    def test_remove_decrements_nlink(self, tree):
        tree.hardlink("/usr/bin/sh2", "/usr/bin/sh")
        tree.remove("/usr/bin/sh")
        assert tree.stat("/usr/bin/sh2").nlink == 1
        assert tree.read_bytes("/usr/bin/sh2") == b"#!shell"

    def test_link_inode_replace(self, tree):
        from repro.vfs.inode import Inode

        inode = Inode(FileKind.FILE, blob=Blob.from_bytes(b"pool content"))
        tree.link_inode("/etc/hosts", inode, replace=True)
        assert tree.read_bytes("/etc/hosts") == b"pool content"
        assert inode.nlink == 2

    def test_link_inode_no_replace_fails(self, tree):
        from repro.vfs.inode import Inode

        inode = Inode(FileKind.FILE, blob=Blob.from_bytes(b"x"))
        with pytest.raises(FileExistsVfsError):
            tree.link_inode("/etc/hosts", inode)


class TestRemoval:
    def test_remove_file(self, tree):
        tree.remove("/etc/hosts")
        assert not tree.exists("/etc/hosts")

    def test_remove_missing_fails(self, tree):
        with pytest.raises(NotFoundError):
            tree.remove("/etc/missing")

    def test_remove_nonempty_dir_needs_recursive(self, tree):
        with pytest.raises(VfsError):
            tree.remove("/usr")
        tree.remove("/usr", recursive=True)
        assert not tree.exists("/usr")

    def test_remove_empty_dir(self, tree):
        tree.mkdir("/empty")
        tree.remove("/empty")
        assert not tree.exists("/empty")


class TestWhiteouts:
    def test_whiteout_hides_entry(self, tree):
        tree.whiteout("/etc/hosts")
        assert not tree.exists("/etc/hosts")
        assert "hosts" not in tree.listdir("/etc")

    def test_whiteout_visible_in_walk_when_asked(self, tree):
        tree.whiteout("/etc/hosts")
        walked = {
            path: node
            for path, node in tree.walk("/", include_whiteouts=True)
        }
        assert walked["/etc/hosts"].is_whiteout

    def test_whiteout_over_nothing_is_allowed(self, tree):
        tree.whiteout("/etc/ghost")
        assert not tree.exists("/etc/ghost")


class TestFreezeAndClone:
    def test_frozen_tree_rejects_writes(self, tree):
        tree.freeze()
        with pytest.raises(ReadOnlyVfsError):
            tree.write_file("/etc/x", b"y")
        with pytest.raises(ReadOnlyVfsError):
            tree.mkdir("/new")
        with pytest.raises(ReadOnlyVfsError):
            tree.remove("/etc/hosts")

    def test_clone_is_writable_and_independent(self, tree):
        tree.freeze()
        copy = tree.clone()
        copy.write_file("/etc/new", b"z")
        assert copy.exists("/etc/new")
        assert not tree.exists("/etc/new")

    def test_clone_preserves_content_and_structure(self, tree):
        copy = tree.clone()
        assert [p for p, _ in copy.walk("/")] == [p for p, _ in tree.walk("/")]
        assert copy.read_bytes("/usr/bin/sh") == b"#!shell"

    def test_total_file_bytes_counts_hardlinks_once(self, tree):
        before = tree.total_file_bytes()
        tree.hardlink("/usr/bin/sh2", "/usr/bin/sh")
        assert tree.total_file_bytes() == before
