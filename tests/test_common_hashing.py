"""Fingerprints and digests."""

import hashlib

from hypothesis import given, strategies as st

from repro.common.hashing import (
    Digest,
    Fingerprint,
    fingerprint_bytes,
    fingerprint_tokens,
    sha256_bytes,
    sha256_tokens,
    stable_u64,
    stable_unit_interval,
)


def test_fingerprint_bytes_matches_md5():
    assert fingerprint_bytes(b"hello") == hashlib.md5(b"hello").hexdigest()


def test_sha256_bytes_matches_hashlib():
    assert sha256_bytes(b"hello") == hashlib.sha256(b"hello").hexdigest()


def test_fingerprint_is_a_string():
    fp = fingerprint_bytes(b"x")
    assert isinstance(fp, str)
    assert isinstance(fp, Fingerprint)
    assert len(fp) == 32


def test_digest_short_prefix():
    digest = sha256_bytes(b"y")
    assert digest.short(8) == digest[:8]


def test_token_hashing_is_order_sensitive():
    assert fingerprint_tokens(["a", "b"]) != fingerprint_tokens(["b", "a"])
    assert sha256_tokens(["a", "b"]) != sha256_tokens(["b", "a"])


def test_token_hashing_separates_boundaries():
    # ("ab", "c") must differ from ("a", "bc").
    assert fingerprint_tokens(["ab", "c"]) != fingerprint_tokens(["a", "bc"])


@given(st.lists(st.text(), max_size=8))
def test_token_hashing_is_deterministic(tokens):
    assert fingerprint_tokens(tokens) == fingerprint_tokens(tokens)
    assert sha256_tokens(tokens) == sha256_tokens(tokens)


def test_stable_u64_is_stable_and_distinct():
    assert stable_u64("a", "b") == stable_u64("a", "b")
    assert stable_u64("a", "b") != stable_u64("a", "c")


@given(st.text(), st.text())
def test_stable_unit_interval_in_range(a, b):
    value = stable_unit_interval(a, b)
    assert 0.0 <= value < 1.0
