"""Collision probability bound (eq. 1) and collision handling."""

import pytest

from repro.blob import Blob, Chunk
from repro.gear.fingerprint import (
    CollisionTracker,
    MD5_BITS,
    collision_probability_bound,
)


class TestBound:
    def test_matches_paper_example(self):
        # ~5e10 deduplicated files -> probability ~5e-18 (§III-B).
        p = collision_probability_bound(int(5e10))
        assert 1e-18 < p < 1e-17

    def test_zero_and_one_file(self):
        assert collision_probability_bound(0) == 0.0
        assert collision_probability_bound(1) == 0.0

    def test_monotonic_in_n(self):
        assert collision_probability_bound(10**6) < collision_probability_bound(10**9)

    def test_below_disk_error_rate_at_hub_scale(self):
        # The design argument: collisions are rarer than disk errors
        # (1e-12..1e-15).
        assert collision_probability_bound(int(5e10)) < 1e-15

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            collision_probability_bound(-1)
        with pytest.raises(ValueError):
            collision_probability_bound(10, bits=0)

    def test_formula(self):
        n = 1000
        assert collision_probability_bound(n) == pytest.approx(
            n * (n - 1) / 2 / 2**MD5_BITS
        )


class TestCollisionTracker:
    def test_normal_files_get_fingerprints(self):
        tracker = CollisionTracker()
        blob = Blob.from_bytes(b"content")
        identity, collided = tracker.register(blob)
        assert identity == blob.fingerprint
        assert not collided

    def test_identical_content_reuses_fingerprint(self):
        tracker = CollisionTracker()
        a = Blob.from_bytes(b"same")
        b = Blob.from_bytes(b"same")
        tracker.register(a)
        identity, collided = tracker.register(b)
        assert identity == a.fingerprint
        assert not collided
        assert tracker.collisions_detected == 0

    def test_forged_collision_gets_unique_id(self):
        # Construct two *different* chunk sequences with a forced-equal
        # fingerprint by building blobs whose fingerprint we control via
        # a stub subclass of Blob.
        class ForgedBlob(Blob):
            @property
            def fingerprint(self):
                from repro.common.hashing import Fingerprint

                return Fingerprint("f" * 32)

        a = ForgedBlob([Chunk(seed="a", size=10)])
        b = ForgedBlob([Chunk(seed="b", size=10)])
        tracker = CollisionTracker()
        id_a, collided_a = tracker.register(a)
        id_b, collided_b = tracker.register(b)
        assert not collided_a
        assert collided_b
        assert id_b != id_a
        assert id_b.startswith("uid-")
        assert tracker.collisions_detected == 1

    def test_unique_ids_are_distinct(self):
        class ForgedBlob(Blob):
            @property
            def fingerprint(self):
                from repro.common.hashing import Fingerprint

                return Fingerprint("f" * 32)

        tracker = CollisionTracker()
        tracker.register(ForgedBlob([Chunk(seed="x", size=1)]))
        id1, _ = tracker.register(ForgedBlob([Chunk(seed="y", size=1)]))
        id2, _ = tracker.register(ForgedBlob([Chunk(seed="z", size=1)]))
        assert id1 != id2
