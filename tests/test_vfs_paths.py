"""Lexical path handling."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import VfsError
from repro.vfs import paths


class TestNormalize:
    def test_identity(self):
        assert paths.normalize("/a/b") == "/a/b"

    def test_root(self):
        assert paths.normalize("/") == "/"

    def test_collapses_slashes_and_dots(self):
        assert paths.normalize("//a///./b/.") == "/a/b"

    def test_resolves_dotdot(self):
        assert paths.normalize("/a/b/../c") == "/a/c"

    def test_rejects_relative(self):
        with pytest.raises(VfsError):
            paths.normalize("a/b")

    def test_rejects_escape(self):
        with pytest.raises(VfsError):
            paths.normalize("/../x")


class TestSplitJoin:
    def test_split(self):
        assert paths.split("/a/b/c") == ["a", "b", "c"]
        assert paths.split("/") == []

    def test_parent_and_name(self):
        assert paths.parent_and_name("/a/b/c") == ("/a/b", "c")
        assert paths.parent_and_name("/a") == ("/", "a")

    def test_parent_of_root_fails(self):
        with pytest.raises(VfsError):
            paths.parent_and_name("/")

    def test_join(self):
        assert paths.join("/a", "b", "c") == "/a/b/c"
        assert paths.join("/", "x") == "/x"

    def test_is_ancestor(self):
        assert paths.is_ancestor("/a", "/a/b/c")
        assert paths.is_ancestor("/", "/anything")
        assert not paths.is_ancestor("/a/b", "/a/c")
        assert paths.is_ancestor("/a", "/a")


class TestSymlinkTargets:
    def test_absolute_target(self):
        assert paths.resolve_symlink_target("/a/b/link", "/x/y") == "/x/y"

    def test_relative_target(self):
        assert paths.resolve_symlink_target("/a/b/link", "sibling") == "/a/b/sibling"

    def test_relative_with_dotdot(self):
        assert paths.resolve_symlink_target("/a/b/link", "../c") == "/a/c"

    def test_empty_target_is_parent(self):
        assert paths.resolve_symlink_target("/a/b/link", "") == "/a/b"


_SEGMENTS = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=6
    ),
    min_size=0,
    max_size=5,
)


@given(_SEGMENTS)
def test_property_normalize_idempotent(segments):
    path = "/" + "/".join(segments)
    once = paths.normalize(path)
    assert paths.normalize(once) == once


@given(_SEGMENTS)
def test_property_split_join_roundtrip(segments):
    path = "/" + "/".join(segments)
    normalized = paths.normalize(path)
    assert paths.join("/", *paths.split(path)) == normalized
