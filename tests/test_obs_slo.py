"""SLO objectives: declarative checks plus windowed burn rates."""

import pytest

from repro.common.clock import SimClock
from repro.obs import (
    Objective,
    TimelineSampler,
    evaluate,
    window_burn_rates,
)


class TestObjective:
    def test_leq_violation(self):
        objective = Objective("deploy_p99_s", 10.0)
        assert not objective.violates(10.0)
        assert objective.violates(10.5)

    def test_eq_violation(self):
        objective = Objective("degraded", 0.0, comparator="==")
        assert not objective.violates(0.0)
        assert objective.violates(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Objective("x", 1.0, comparator=">=")
        with pytest.raises(ValueError):
            Objective("x", 1.0, series="x", window_s=0.0)
        with pytest.raises(ValueError):
            Objective("x", 1.0, series="x", budget=0.0)


class TestBurnWindows:
    def _series(self, points):
        clock = SimClock()
        sampler = TimelineSampler(clock)
        for at_s, value in points:
            sampler.record("lat", at_s, value)
        return sampler.series_for("lat")

    def test_no_violations_zero_burn(self):
        series = self._series([(0.0, 1.0), (1.0, 1.0), (3.0, 1.0)])
        objective = Objective("lat", 5.0, series="lat", window_s=2.0,
                              budget=0.5)
        assert window_burn_rates(series, objective) == [0.0, 0.0]

    def test_burn_is_violating_fraction_over_budget(self):
        # Window 1: one of two points violates -> 0.5 / 0.25 = 2.0.
        series = self._series([(0.0, 10.0), (1.0, 1.0), (2.5, 1.0)])
        objective = Objective("lat", 5.0, series="lat", window_s=2.0,
                              budget=0.25)
        rates = window_burn_rates(series, objective)
        assert rates == [pytest.approx(2.0), 0.0]

    def test_empty_series_no_windows(self):
        series = self._series([])
        objective = Objective("lat", 5.0, series="lat")
        assert window_burn_rates(series, objective) == []


class TestEvaluate:
    def test_all_met(self):
        report = evaluate(
            (
                Objective("ready_p99_s", 10.0),
                Objective("degraded", 0.0, comparator="=="),
            ),
            {"ready_p99_s": 4.0, "degraded": 0.0},
        )
        assert report.ok
        assert report.violated() == []

    def test_violations_listed_and_ok_false(self):
        report = evaluate(
            (Objective("ready_p99_s", 1.0),),
            {"ready_p99_s": 4.0},
        )
        assert not report.ok
        assert report.violated() == ["ready_p99_s"]
        assert report.as_dict()["violated"] == ["ready_p99_s"]

    def test_missing_observation_is_hard_error(self):
        with pytest.raises(KeyError):
            evaluate((Objective("ready_p99_s", 1.0),), {})

    def test_series_burn_can_fail_a_met_scalar(self):
        # The scalar p99 is inside the threshold, but one burn window is
        # saturated with violations: the objective must still fail.
        clock = SimClock()
        sampler = TimelineSampler(clock)
        for at_s in (0.0, 0.5, 1.0):
            sampler.record("ready_s", at_s, 100.0)
        sampler.record("ready_s", 10.0, 1.0)
        report = evaluate(
            (
                Objective("ready_p99_s", 50.0, series="ready_s",
                          window_s=2.0, budget=0.5),
            ),
            {"ready_p99_s": 40.0},
            sampler=sampler,
        )
        assert not report.ok
        outcome = report.outcomes[0]
        assert outcome.burn_rate > 1.0
        assert outcome.windows == 2

    def test_series_objective_without_sampler_is_scalar_only(self):
        report = evaluate(
            (Objective("ready_p99_s", 50.0, series="ready_s"),),
            {"ready_p99_s": 40.0},
        )
        assert report.ok
        assert report.outcomes[0].windows == 0
