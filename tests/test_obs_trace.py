"""Span tracer invariants, export determinism, and the compat shim.

The tracer's contract has three load-bearing pieces:

* **structure** — spans nest correctly per track, parents always exist,
  and spawned processes inherit the spawner's innermost span;
* **determinism** — the exported Chrome trace and metrics snapshot are
  byte-identical across double runs, even under a faulty + hedged HA
  fleet wave (the `scripts/check.sh` gate's property);
* **compatibility** — the legacy ``SimClock.trace`` list of
  ``(timestamp, label)`` tuples still works through the shim.
"""

from __future__ import annotations

import pytest

from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.common.clock import NULL_SPAN, SimClock, SimScheduler
from repro.net.faults import BrownoutWindow, FaultPlan
from repro.net.topology import HACluster
from repro.obs import (
    SpanTracer,
    chrome_trace,
    critical_path,
    dump_json,
    metrics_snapshot,
    trace_json,
)


class TestSpanBasics:
    def test_begin_end_records_interval(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        span = tracer.begin("work", job="x")
        clock.advance(2.5)
        tracer.end(span)
        assert span.start_s == 0.0
        assert span.end_s == 2.5
        assert span.duration_s == 2.5
        assert span.labels == {"job": "x"}

    def test_context_manager_pairs_begin_with_end(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        with clock.span("outer") as outer:
            clock.advance(1.0)
            with clock.span("inner") as inner:
                clock.advance(1.0)
        assert inner.parent_id == outer.id
        assert outer.parent_id is None
        assert tracer.finished_spans() == [outer, inner]

    def test_annotate_merges_labels_and_returns_span(self):
        clock = SimClock()
        clock.attach_tracer()
        with clock.span("fetch", fp="abc") as span:
            assert span.annotate(bytes=42) is span
        assert span.labels == {"fp": "abc", "bytes": 42}

    def test_recording_costs_zero_virtual_time(self):
        clock = SimClock()
        clock.attach_tracer()
        with clock.span("outer"):
            with clock.span("inner"):
                clock.instant("tick")
        assert clock.now == 0.0

    def test_open_span_has_zero_duration_and_is_not_finished(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        span = tracer.begin("open")
        clock.advance(5.0)
        assert span.duration_s == 0.0
        assert tracer.finished_spans() == []

    def test_exception_unwinding_closes_nested_spans(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        with pytest.raises(RuntimeError):
            with clock.span("outer"):
                with clock.span("inner"):
                    raise RuntimeError("boom")
        assert all(s.end_s is not None for s in tracer.spans)

    def test_span_ids_are_unique_and_increasing(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        for index in range(5):
            with clock.span(f"s{index}"):
                clock.advance(0.1)
        ids = [span.id for span in tracer.spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_clear_resets_ids_and_tracks(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        with clock.span("a"):
            pass
        tracer.clear()
        assert tracer.spans == []
        assert tracer.instants == []
        assert [t.name for t in tracer.tracks()] == ["main"]
        with clock.span("b") as span:
            pass
        assert span.id == 1


class TestNullSpan:
    def test_detached_clock_hands_out_the_shared_null_span(self):
        clock = SimClock()
        assert clock.tracer is None
        assert clock.span("anything", label=1) is NULL_SPAN
        assert clock.instant("tick") is NULL_SPAN

    def test_null_span_supports_the_full_span_protocol(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
            assert span.annotate(bytes=1) is NULL_SPAN

    def test_detach_makes_telemetry_free_again(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        with clock.span("recorded"):
            pass
        assert clock.detach_tracer() is tracer
        assert clock.span("dropped") is NULL_SPAN
        assert len(tracer.finished_spans()) == 1


class TestSpawnParenting:
    def test_spawned_process_inherits_spawner_span(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        child_spans = []

        def worker():
            with clock.span("child_work") as span:
                clock.advance(1.0)
            child_spans.append(span)

        with SimScheduler(clock) as scheduler:
            with clock.span("parent") as parent:
                scheduler.spawn(worker, name="worker")
                scheduler.run()
        (child,) = child_spans
        assert child.parent_id == parent.id
        assert child.track != parent.track
        names = [t.name for t in tracer.tracks()]
        assert names == ["main", "worker"]

    def test_sibling_processes_get_separate_tracks(self):
        clock = SimClock()
        tracer = clock.attach_tracer()

        def worker():
            with clock.span("w"):
                clock.advance(1.0)

        with SimScheduler(clock) as scheduler:
            for index in range(3):
                scheduler.spawn(worker, name=f"w{index}")
            scheduler.run()
        tracks = {s.track for s in tracer.finished_spans()}
        assert len(tracks) == 3


def _span_index(tracer):
    return {span.id: span for span in tracer.finished_spans()}


class TestDeploymentSpanTree:
    """Structural invariants over a real traced Gear deployment."""

    @pytest.fixture()
    def traced_deploy(self, small_corpus):
        testbed = make_testbed(bandwidth_mbps=100)
        publish_images(testbed, small_corpus.images, convert=True)
        tracer = testbed.attach_tracer()
        generated = small_corpus.by_series["nginx"][0]
        result = deploy_with_gear(testbed, generated)
        return tracer, result

    def test_every_parent_exists(self, traced_deploy):
        tracer, _ = traced_deploy
        by_id = _span_index(tracer)
        for span in tracer.finished_spans():
            assert span.parent_id is None or span.parent_id in by_id

    def test_same_track_children_nest_within_parents(self, traced_deploy):
        tracer, _ = traced_deploy
        by_id = _span_index(tracer)
        for span in tracer.finished_spans():
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            if parent.track != span.track:
                continue
            assert span.start_s >= parent.start_s - 1e-9
            assert span.end_s <= parent.end_s + 1e-9

    def test_deploy_span_matches_report_total(self, traced_deploy):
        tracer, result = traced_deploy
        (deploy,) = [
            s for s in tracer.finished_spans() if s.name == "deploy"
        ]
        assert deploy.duration_s == pytest.approx(result.total_s, abs=1e-9)

    def test_critical_path_covers_the_makespan(self, traced_deploy):
        tracer, result = traced_deploy
        report = critical_path(tracer, root="deploy")
        assert report is not None
        assert report.coverage >= 0.95
        assert report.phase_sum() == pytest.approx(report.total_s, abs=1e-9)
        assert report.total_s == pytest.approx(result.total_s, abs=1e-9)

    def test_expected_phases_appear(self, traced_deploy):
        tracer, _ = traced_deploy
        names = {s.name for s in tracer.finished_spans()}
        assert {"deploy", "pull_index", "fetch_file", "link"} <= names


def _traced_ha_wave(seed: str, images):
    """A faulty + hedged HA fleet wave with the tracer attached.

    Returns the exported (trace_json, metrics_json) pair — the byte
    strings the determinism gate compares.
    """
    slow = FaultPlan(
        brownouts=(BrownoutWindow(start_s=0.0, duration_s=1e9, factor=8.0),),
        seed=f"{seed}-slow",
    )
    cluster = HACluster(
        3,
        replicas=2,
        bandwidth_mbps=904.0,
        hedging=True,
        seed=seed,
        replica_fault_plans=[slow],
    )
    testbed = cluster.registry_testbed
    publish_images(testbed, images, convert=True)
    testbed.arm_faults()
    tracer = testbed.attach_tracer()
    generated_ref = images[0]
    cluster.deploy_wave(
        lambda node: deploy_with_gear(node.testbed, generated_ref),
        concurrency=3,
    )
    metrics = (
        dump_json(metrics_snapshot(testbed.metrics))
        if testbed.metrics is not None
        else "{}"
    )
    return trace_json(tracer), metrics


class TestExportDeterminism:
    @pytest.mark.parametrize("seed", ["obs-seed-a", "obs-seed-b"])
    def test_double_run_is_byte_identical(self, seed, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        first = _traced_ha_wave(seed, [generated])
        second = _traced_ha_wave(seed, [generated])
        assert first[0] == second[0], "trace JSON diverged between runs"
        assert first[1] == second[1], "metrics JSON diverged between runs"

    def test_wave_trace_has_per_client_tracks(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        trace, _ = _traced_ha_wave("obs-seed-a", [generated])
        assert '"node-000"' in trace
        assert '"node-002"' in trace

    def test_chrome_trace_shape(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        with clock.span("deploy", ref="app:v1"):
            clock.advance(1.5, "pull")
        doc = chrome_trace(tracer)
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        completes = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert metas[0]["args"]["name"] == "main"
        (span_event,) = completes
        assert span_event["name"] == "deploy"
        assert span_event["dur"] == pytest.approx(1.5e6)
        assert span_event["args"]["ref"] == "app:v1"
        (instant_event,) = instants
        assert instant_event["name"] == "pull"
        assert instant_event["ts"] == pytest.approx(1.5e6)


class TestCompatShim:
    def test_trace_flag_records_advance_labels(self):
        clock = SimClock(trace=True)
        clock.advance(1.0, "pull")
        clock.advance(2.0, "run")
        assert clock.trace == [(1.0, "pull"), (3.0, "run")]

    def test_untraced_clock_has_empty_trace(self):
        clock = SimClock()
        clock.advance(1.0, "pull")
        assert clock.trace == []

    def test_reset_clears_the_trace(self):
        clock = SimClock(trace=True)
        clock.advance(1.0, "pull")
        clock.reset()
        assert clock.trace == []
        assert clock.now == 0.0

    def test_note_lands_in_the_compat_view(self):
        clock = SimClock(trace=True)
        clock.advance(0.5)
        clock.note("checkpoint")
        assert clock.trace == [(0.5, "checkpoint")]

    def test_unlabeled_advance_records_nothing(self):
        clock = SimClock(trace=True)
        clock.advance(1.0)
        assert clock.trace == []
