"""Per-category structural invariants of the synthetic corpus.

One representative series per Table I category, generated tiny, checked
against the structural promises DESIGN.md makes about the generator.
"""

import pytest

from repro.workloads.corpus import CorpusBuilder, CorpusConfig
from repro.workloads.series import CATEGORY_PROFILES, get_series

#: (series, category) — one representative per category.
REPRESENTATIVES = [
    ("debian", "Linux Distro"),
    ("python", "Language"),
    ("mysql", "Database"),
    ("nginx", "Web Component"),
    ("wordpress", "Application Platform"),
    ("vault", "Others"),
]


@pytest.fixture(scope="module")
def category_corpus():
    config = CorpusConfig(
        seed=11,
        file_scale=0.15,
        size_scale=0.05,
        series_names=tuple(name for name, _ in REPRESENTATIVES),
        versions_cap=6,
    )
    return CorpusBuilder(config).build()


@pytest.mark.parametrize("name,category", REPRESENTATIVES)
class TestPerCategory:
    def test_category_assignment(self, category_corpus, name, category):
        for generated in category_corpus.by_series[name]:
            assert generated.category == category

    def test_layer_structure(self, category_corpus, name, category):
        generated = category_corpus.by_series[name][0]
        layer_count = len(generated.image.layers)
        if category == "Linux Distro":
            assert layer_count == 1  # single-layer base, like Fig. 1's debian
        elif category == "Language":
            assert layer_count == 3  # base + runtime + app
        else:
            assert layer_count == 4  # base + runtime + app + config

    def test_trace_covers_plausible_byte_fraction(
        self, category_corpus, name, category
    ):
        for generated in category_corpus.by_series[name]:
            ratio = (
                generated.trace.total_bytes / generated.image.uncompressed_size
            )
            assert 0.02 < ratio < 0.65, (name, ratio)

    def test_trace_orders_configs_before_data(
        self, category_corpus, name, category
    ):
        generated = category_corpus.by_series[name][-1]
        kinds = []
        for path, _ in generated.trace.accesses:
            if path.endswith(".conf"):
                kinds.append("config")
            elif path.endswith(".dat"):
                kinds.append("data")
        if "config" in kinds and "data" in kinds:
            assert kinds.index("config") < kinds.index("data")

    def test_versions_monotone_tags(self, category_corpus, name, category):
        tags = [g.tag for g in category_corpus.by_series[name]]
        assert tags == [f"v{i + 1}" for i in range(len(tags))]

    def test_compute_time_near_profile(self, category_corpus, name, category):
        profile = CATEGORY_PROFILES[category]
        for generated in category_corpus.by_series[name]:
            assert (
                0.85 * profile.task_compute_s
                <= generated.trace.compute_s
                <= 1.15 * profile.task_compute_s
            )


class TestCrossCategoryInvariants:
    def test_distro_series_churn_most(self, category_corpus):
        """File survival across versions: distro lowest, Web highest."""

        def survival(name):
            series = category_corpus.by_series[name]
            first = {
                node.blob.fingerprint
                for _, node in series[0].image.flatten().iter_files()
            }
            last = {
                node.blob.fingerprint
                for _, node in series[-1].image.flatten().iter_files()
            }
            return len(first & last) / len(first)

        assert survival("debian") < survival("nginx")
        assert survival("python") < survival("nginx")

    def test_base_epoch_pinning(self, category_corpus):
        nginx = category_corpus.by_series["nginx"]
        # Versions 1-5 share one base epoch; version 6 crosses into the
        # next (BASE_EPOCH = 5).
        assert (
            nginx[0].image.layers[0].digest == nginx[4].image.layers[0].digest
        )
        assert (
            nginx[4].image.layers[0].digest != nginx[5].image.layers[0].digest
        )

    def test_config_layer_is_tiny(self, category_corpus):
        generated = category_corpus.by_series["mysql"][0]
        config_layer = generated.image.layers[-1]
        assert config_layer.uncompressed_size < (
            0.05 * generated.image.uncompressed_size
        )

    def test_deterministic_across_builders(self, category_corpus):
        rebuilt = CorpusBuilder(category_corpus.config).build()
        assert rebuilt.references() == category_corpus.references()
