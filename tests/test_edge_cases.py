"""Deep edge cases across subsystems.

Scenarios too specific for the per-module files: overlay chains three
levels deep, whiteout-over-whiteout, empty layers, zero-byte files end to
end, metadata propagation through conversion, and accounting corners.
"""

import pytest

from repro.blob import Blob
from repro.common.clock import SimClock
from repro.docker.builder import ImageBuilder, layer_from_files
from repro.docker.registry import DockerRegistry
from repro.gear.converter import GearConverter
from repro.gear.registry import GearRegistry
from repro.vfs.inode import Metadata
from repro.vfs.overlay import OverlayMount
from repro.vfs.tar import LayerArchive
from repro.vfs.tree import FileSystemTree


class TestDeepOverlayChains:
    def make_three_level(self):
        bottom = FileSystemTree()
        bottom.write_file("/f", b"bottom", parents=True)
        bottom.write_file("/only-bottom", b"ob")
        middle = FileSystemTree()
        middle.write_file("/f", b"middle")
        middle.whiteout("/only-bottom")
        top = FileSystemTree()
        top.write_file("/g", b"top")
        return OverlayMount([top.freeze(), middle.freeze(), bottom.freeze()])

    def test_middle_layer_shadows_and_whiteouts(self):
        mount = self.make_three_level()
        assert mount.read_bytes("/f") == b"middle"
        assert not mount.exists("/only-bottom")
        assert mount.read_bytes("/g") == b"top"

    def test_upper_write_over_three_levels(self):
        mount = self.make_three_level()
        mount.write_file("/f", b"upper")
        assert mount.read_bytes("/f") == b"upper"
        mount.remove("/f")
        # Whiteout hides both middle and bottom versions.
        assert not mount.exists("/f")

    def test_recreating_whiteouted_lower_name(self):
        mount = self.make_three_level()
        mount.write_file("/only-bottom", b"reborn", parents=True)
        assert mount.read_bytes("/only-bottom") == b"reborn"

    def test_listdir_across_three_levels(self):
        mount = self.make_three_level()
        assert mount.listdir("/") == ["f", "g"]


class TestZeroByteFiles:
    def test_zero_byte_file_through_gear_pipeline(self):
        clock = SimClock()
        docker_registry = DockerRegistry()
        gear_registry = GearRegistry()
        converter = GearConverter(clock, docker_registry, gear_registry)
        image = (
            ImageBuilder("zero", "v1")
            .add_file("/empty", b"")
            .add_file("/full", b"data")
            .build()
        )
        docker_registry.push_image(image)
        index, report = converter.convert("zero:v1")
        assert report.file_count == 2
        assert index.entries["/empty"].size == 0
        empty_identity = index.entries["/empty"].identity
        assert gear_registry.download(empty_identity).size == 0

    def test_two_empty_files_deduplicate(self):
        tree = FileSystemTree()
        tree.write_file("/a", b"", parents=True)
        tree.write_file("/b", b"", parents=True)
        assert (
            tree.read_blob("/a").fingerprint == tree.read_blob("/b").fingerprint
        )


class TestEmptyAndOddLayers:
    def test_empty_tree_archive(self):
        archive = LayerArchive.from_tree(FileSystemTree())
        assert len(archive) == 0
        assert archive.uncompressed_size > 0  # tar trailer blocks
        extracted = archive.extract()
        assert extracted.count_nodes() == 0

    def test_two_empty_layers_share_digest(self):
        a = LayerArchive.from_tree(FileSystemTree())
        b = LayerArchive.from_tree(FileSystemTree())
        assert a.digest == b.digest

    def test_directory_metadata_survives_roundtrip(self):
        tree = FileSystemTree()
        inode = tree.mkdir("/secret")
        inode.meta.mode = 0o700
        inode.meta.uid = 1000
        extracted = LayerArchive.from_tree(tree).extract()
        assert extracted.stat("/secret").meta.mode == 0o700
        assert extracted.stat("/secret").meta.uid == 1000


class TestMetadataThroughConversion:
    def test_file_mode_preserved_into_index_and_fault(self):
        clock = SimClock()
        docker_registry = DockerRegistry()
        gear_registry = GearRegistry()
        converter = GearConverter(clock, docker_registry, gear_registry)
        image = (
            ImageBuilder("modes", "v1")
            .add_file("/bin/tool", b"x" * 100, mode=0o755)
            .add_file("/etc/secret", b"y" * 100, mode=0o600)
            .build()
        )
        docker_registry.push_image(image)
        index, _ = converter.convert("modes:v1")
        assert index.entries["/bin/tool"].mode == 0o755
        assert index.entries["/etc/secret"].mode == 0o600
        assert index.tree.stat("/bin/tool").meta.mode == 0o755

    def test_hardlinked_files_become_one_gear_file(self):
        clock = SimClock()
        docker_registry = DockerRegistry()
        gear_registry = GearRegistry()
        converter = GearConverter(clock, docker_registry, gear_registry)
        tree = FileSystemTree()
        tree.write_file("/a", b"shared inode" * 50, parents=True)
        tree.hardlink("/b", "/a")
        from repro.docker.builder import image_from_tree

        docker_registry.push_image(image_from_tree("hard", "v1", tree))
        index, report = converter.convert("hard:v1")
        assert report.file_count == 2  # two paths
        assert len(list(index.identities())) == 1  # one content
        assert gear_registry.file_count == 1


class TestAccountingCorners:
    def test_link_log_records_have_timestamps(self):
        from repro.net.link import Link

        clock = SimClock()
        link = Link(clock, bandwidth_mbps=8)
        link.transfer(1000, label="first")
        link.transfer(2000, label="second")
        records = link.log.records
        assert records[0].end <= records[1].start + 1e-12
        assert records[1].label == "second"
        assert link.log.total_time == pytest.approx(
            records[0].duration + records[1].duration
        )

    def test_clock_trace_through_deployment(self, small_corpus):
        from repro.bench.environment import make_testbed, publish_images
        from repro.bench.deploy import deploy_with_gear

        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        # Virtual elapsed == sum of pull and run phases exactly.
        before = testbed.clock.now
        result = deploy_with_gear(testbed, small_corpus.get("nginx:v1"))
        assert testbed.clock.now - before == pytest.approx(result.total_s)

    def test_registry_layer_bytes_uncompressed_vs_stored(self):
        registry = DockerRegistry()
        layer = layer_from_files([("/f", b"z" * 50_000)])
        registry.push_layer(layer)
        assert registry.uncompressed_layer_bytes == layer.uncompressed_size
        assert registry.stored_bytes < registry.uncompressed_layer_bytes


class TestIndexTreeSharing:
    def test_concurrent_containers_see_each_others_materialization(
        self, small_corpus
    ):
        from repro.bench.environment import make_testbed, publish_images

        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        first, _ = testbed.gear_driver.deploy("nginx.gear:v1")
        second = testbed.gear_driver.create_container("nginx.gear:v1")
        testbed.gear_driver.start_container(second)
        path = small_corpus.get("nginx:v1").trace.paths[0]
        first.mount.read_bytes(path)
        # Second container reads the same file: zero faults, shared inode.
        second.mount.read_bytes(path)
        assert second.mount.fault_stats.faults == 0
        assert (
            first.mount.stat(path).ino == second.mount.stat(path).ino
        )

    def test_writes_in_one_container_invisible_to_the_other(
        self, small_corpus
    ):
        from repro.bench.environment import make_testbed, publish_images

        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        first, _ = testbed.gear_driver.deploy("nginx.gear:v1")
        second = testbed.gear_driver.create_container("nginx.gear:v1")
        first.mount.write_file("/tmp/mine", b"private", parents=True)
        assert not second.mount.exists("/tmp/mine")


class TestBlobChunkBoundaries:
    @pytest.mark.parametrize("size", [
        0, 1, 128 * 1024 - 1, 128 * 1024, 128 * 1024 + 1, 5 * 128 * 1024,
    ])
    def test_synthetic_sizes_at_boundaries(self, size):
        blob = Blob.synthetic("edge", size)
        assert blob.size == size
        assert sum(c.size for c in blob.chunks) == size
        if size:
            assert all(c.size > 0 for c in blob.chunks)

    def test_mutate_preserves_size_without_delta(self):
        blob = Blob.synthetic("edge", 777_777)
        assert blob.mutate("m", 0.5).size == blob.size
