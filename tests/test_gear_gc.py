"""Registry garbage collection: mark-and-sweep of unreferenced Gear files."""

import pytest

from repro.common.clock import SimClock
from repro.docker.builder import ImageBuilder
from repro.docker.registry import DockerRegistry
from repro.gear.converter import GearConverter
from repro.gear.gc import collect_garbage, live_identities
from repro.gear.registry import GearRegistry


@pytest.fixture
def env():
    clock = SimClock()
    docker_registry = DockerRegistry()
    gear_registry = GearRegistry()
    converter = GearConverter(clock, docker_registry, gear_registry)
    shared = ImageBuilder("shared", "v1").add_file("/common", b"same" * 500).build()
    only_a = (
        ImageBuilder("aaa", "v1", base=shared)
        .add_file("/a-only", b"aaa" * 500)
        .build()
    )
    only_b = (
        ImageBuilder("bbb", "v1", base=shared)
        .add_file("/b-only", b"bbb" * 500)
        .build()
    )
    docker_registry.push_image(only_a)
    docker_registry.push_image(only_b)
    converter.convert("aaa:v1")
    converter.convert("bbb:v1")
    return docker_registry, gear_registry


class TestMark:
    def test_live_set_covers_all_entries(self, env):
        docker_registry, gear_registry = env
        live = live_identities(docker_registry)
        assert live == set(gear_registry.identities())

    def test_regular_images_do_not_mark(self, env):
        docker_registry, _ = env
        # The original (non-index) manifests contribute nothing.
        extra = ImageBuilder("plain", "v1").add_file("/x", b"y").build()
        docker_registry.push_image(extra)
        before = live_identities(docker_registry)
        assert extra.layers[0].digest not in before


class TestSweep:
    def test_nothing_collected_while_all_referenced(self, env):
        docker_registry, gear_registry = env
        report = collect_garbage(docker_registry, gear_registry)
        assert report.deleted_files == 0
        assert report.indexes_scanned == 2

    def test_deleting_one_index_frees_only_its_private_files(self, env):
        docker_registry, gear_registry = env
        files_before = gear_registry.file_count
        docker_registry.delete_manifest("aaa.gear:v1")
        report = collect_garbage(docker_registry, gear_registry)
        # /a-only is unreferenced; /common is still used by bbb.
        assert report.deleted_files == 1
        assert gear_registry.file_count == files_before - 1
        assert report.deleted_bytes > 0

    def test_deleting_all_indexes_frees_everything(self, env):
        docker_registry, gear_registry = env
        docker_registry.delete_manifest("aaa.gear:v1")
        docker_registry.delete_manifest("bbb.gear:v1")
        report = collect_garbage(docker_registry, gear_registry)
        assert gear_registry.file_count == 0
        assert report.live_files == 0
        assert report.deleted_files == 3

    def test_dry_run_deletes_nothing(self, env):
        docker_registry, gear_registry = env
        docker_registry.delete_manifest("aaa.gear:v1")
        before = gear_registry.file_count
        report = collect_garbage(docker_registry, gear_registry, dry_run=True)
        assert report.deleted_files == 1
        assert gear_registry.file_count == before

    def test_gc_is_idempotent(self, env):
        docker_registry, gear_registry = env
        docker_registry.delete_manifest("aaa.gear:v1")
        collect_garbage(docker_registry, gear_registry)
        second = collect_garbage(docker_registry, gear_registry)
        assert second.deleted_files == 0

    def test_survivors_still_deployable(self, env):
        docker_registry, gear_registry = env
        docker_registry.delete_manifest("aaa.gear:v1")
        collect_garbage(docker_registry, gear_registry)
        # bbb still resolves every entry it references.
        live = live_identities(docker_registry)
        for identity in live:
            assert gear_registry.query(identity)

    def test_sweep_never_downloads_dead_files(self, env, monkeypatch):
        # The sweep must size candidates from store metadata; pulling
        # every dead payload would make GC cost a mirror of the garbage.
        docker_registry, gear_registry = env
        docker_registry.delete_manifest("aaa.gear:v1")

        def forbidden(identity):
            raise AssertionError(f"GC downloaded {identity!r}")

        monkeypatch.setattr(gear_registry, "download", forbidden)
        report = collect_garbage(docker_registry, gear_registry)
        assert report.deleted_files == 1
        assert report.deleted_bytes > 0

    def test_deleted_bytes_come_from_stored_metadata(self, env):
        docker_registry, gear_registry = env
        docker_registry.delete_manifest("aaa.gear:v1")
        dry = collect_garbage(docker_registry, gear_registry, dry_run=True)
        expected = sum(
            gear_registry.stat(identity).stored_size
            for identity in dry.deleted_identities
        )
        assert dry.deleted_bytes == expected


class TestMarkEpochGuard:
    def test_file_uploaded_during_mark_is_never_swept(self, env, monkeypatch):
        # The push protocol uploads Gear files *before* the index that
        # references them, so a file landing after the mark phase began
        # may belong to an index the mark never saw.  Simulate the race:
        # an upload arrives while live_identities() is walking manifests.
        import repro.gear.gc as gc_module
        from repro.blob import Blob
        from repro.gear.gearfile import GearFile

        docker_registry, gear_registry = env
        racer = GearFile.from_blob(Blob.synthetic("mid-mark-upload", 800))
        real_mark = gc_module.live_identities

        def racing_mark(registry):
            gear_registry.upload(racer)  # client pushing a new image
            return real_mark(registry)

        monkeypatch.setattr(gc_module, "live_identities", racing_mark)
        report = collect_garbage(docker_registry, gear_registry)
        # The racer is unreferenced (its index has not been pushed yet)
        # but must be spared, not reclaimed.
        assert report.skipped_recent == 1
        assert racer.identity not in report.deleted_identities
        assert gear_registry.query(racer.identity)

    def test_spared_file_is_collected_next_pass_if_still_dead(self, env):
        from repro.blob import Blob
        from repro.gear.gearfile import GearFile

        docker_registry, gear_registry = env
        orphan = GearFile.from_blob(Blob.synthetic("orphan", 600))
        # Upload after snapshotting would be spared; upload *before* the
        # pass starts is fair game on the very next collection.
        gear_registry.upload(orphan)
        report = collect_garbage(docker_registry, gear_registry)
        assert report.skipped_recent == 0
        assert orphan.identity in report.deleted_identities
        assert not gear_registry.query(orphan.identity)


class TestGcVsEdgeDeploy:
    """GC racing a concurrent *peer-served* deploy (edge tier).

    Two hazards: (1) a collection pass runs while a peer is mid-serve of
    a freshly pushed file whose index is still in flight — the mark
    epoch must spare it so the deploy's registry fallback still
    resolves; (2) a sweep plus churn removes a fingerprint from the
    registry *and* its last holder from the site — the tracker must not
    stay pointed at it.
    """

    def _edge_env(self, small_corpus):
        from repro.bench.environment import make_edge_testbed, publish_images

        root = make_edge_testbed()
        generated = small_corpus.by_series["nginx"][0]
        publish_images(root, [generated], convert=True)
        return root, generated

    def test_mark_epoch_keeps_mid_serve_file_alive(
        self, small_corpus, monkeypatch
    ):
        import repro.gear.gc as gc_module
        from repro.bench.deploy import deploy_with_gear
        from repro.blob import Blob
        from repro.gear.gearfile import GearFile

        root, generated = self._edge_env(small_corpus)
        first = root.edge.client()
        deploy_with_gear(first, generated)
        root.edge.gossip()

        # A new image version is mid-push: its Gear files land before
        # the index that will reference them (§III-C).
        racer = GearFile.from_blob(Blob.synthetic("in-flight-push", 800))
        second = root.edge.client()
        real_mark = gc_module.live_identities
        served_before = root.edge.stats.peer_hits

        def racing_mark(registry):
            # Both races fire while the mark walks manifests: the push
            # completes its file upload, and a peer-served deploy runs.
            root.gear_registry.upload(racer)
            deploy_with_gear(second, generated)
            return real_mark(registry)

        monkeypatch.setattr(gc_module, "live_identities", racing_mark)
        report = gc_module.collect_garbage(
            root.docker_registry, root.gear_registry
        )

        # The in-flight upload was spared, not reclaimed.
        assert report.skipped_recent == 1
        assert racer.identity not in report.deleted_identities
        assert root.gear_registry.query(racer.identity)
        # The peer-served deploy completed mid-GC and nothing it read
        # was collected out from under it.
        assert root.edge.stats.peer_hits > served_before
        live = gc_module.live_identities(root.docker_registry)
        for identity in live:
            assert root.gear_registry.query(identity)
        assert root.edge.audit_integrity() == []

    def test_sweep_during_churn_never_strands_tracker(self, small_corpus):
        from repro.bench.deploy import deploy_with_gear
        from repro.bench.environment import publish_images

        root, generated = self._edge_env(small_corpus)
        keeper = small_corpus.by_series["tomcat"][0]
        publish_images(root, [keeper], convert=True)

        first = root.edge.client()
        deploy_with_gear(first, generated)
        second = root.edge.client()
        deploy_with_gear(second, keeper)
        root.edge.gossip()

        # The operator retires the nginx image; its now-unreferenced
        # files are swept from the registry while peers still hold and
        # advertise cached copies.
        root.docker_registry.delete_manifest(
            generated.reference.replace(":", ".gear:")
        )
        report = collect_garbage(root.docker_registry, root.gear_registry)
        collected = set(report.deleted_identities)
        assert collected

        site = root.edge.sites[0]
        # Cached copies keep the tracker entries alive for now — that is
        # fine, a peer can still serve what it physically holds.
        still_tracked = collected & set(site.tracker.identities())
        assert still_tracked

        # Churn takes the holder away; the next gossip refresh must drop
        # every entry no online peer can back.
        root.edge.peers[0].online = False
        root.edge.gossip()
        for identity in site.tracker.identities():
            holders = site.tracker.resolve(identity)
            assert holders, identity
            for name in holders:
                peer = site.peer(name)
                assert peer.online and peer.holds(identity)
        # In particular nothing collected-and-unheld is still advertised.
        for identity in collected:
            for name in site.tracker.resolve(identity):
                assert site.peer(name).online
                assert site.peer(name).holds(identity)
