"""Storage comparison harness (Fig. 7) and analysis modules."""

import pytest

from repro.analysis import compute_dedup_table, category_redundancy, series_redundancy
from repro.bench.storage import (
    category_savings,
    compare_storage,
    compare_storage_by_series,
)


class TestCompareStorage:
    def test_gear_saves_space_on_a_version_chain(self, small_corpus):
        comparison = compare_storage("nginx", small_corpus.by_series["nginx"])
        assert comparison.docker_bytes > 0
        assert comparison.gear_bytes < comparison.docker_bytes
        assert 0 < comparison.saving_fraction < 1

    def test_index_share_is_small(self, small_corpus):
        comparison = compare_storage("nginx", small_corpus.by_series["nginx"])
        # "Gear indexes … only occupies 1.1% of total Gear images" (§V-C).
        assert comparison.index_share < 0.1

    def test_by_series_covers_all(self, small_corpus):
        by_series = compare_storage_by_series(small_corpus.by_series)
        assert set(by_series) == set(small_corpus.by_series)

    def test_category_savings_aggregation(self, small_corpus):
        by_series = compare_storage_by_series(small_corpus.by_series)
        from repro.workloads.series import SERIES

        savings = category_savings(
            by_series, {s.name: s.category for s in SERIES}
        )
        assert "Web Component" in savings
        assert 0 < savings["Web Component"] < 1


class TestDedupTable:
    def test_shape_on_small_corpus(self, small_corpus):
        table = compute_dedup_table(small_corpus.docker_images())
        rows = table.rows()
        assert [r[0] for r in rows] == [
            "No", "Layer-level", "File-level", "Chunk-level",
        ]
        storage = [r[1] for r in rows]
        assert storage[0] >= storage[1] >= storage[2] >= storage[3]
        objects = [r[2] for r in rows]
        assert objects[0] <= objects[1] <= objects[2] <= objects[3]

    def test_reductions_and_blowup(self, small_corpus):
        table = compute_dedup_table(small_corpus.docker_images())
        reductions = table.reduction_vs_none()
        assert reductions["layer"] < reductions["file"] <= reductions["chunk"]
        assert table.chunk_object_blowup >= 1.0


class TestRedundancy:
    def test_series_redundancy_in_unit_interval(self, small_corpus):
        result = series_redundancy(small_corpus.by_series["tomcat"])
        assert 0 <= result.redundancy_ratio < 1
        assert result.total_necessary_bytes >= result.unique_necessary_bytes
        assert result.series == "tomcat"

    def test_versions_create_redundancy(self, small_corpus):
        # A single image has no cross-version redundancy; four do.
        single = series_redundancy(small_corpus.by_series["tomcat"][:1])
        many = series_redundancy(small_corpus.by_series["tomcat"])
        assert single.redundancy_ratio == 0.0
        assert many.redundancy_ratio > 0.1

    def test_category_summary_has_average(self, small_corpus):
        summary = category_redundancy(small_corpus)
        assert "Average" in summary
        assert all(0 <= v < 1 for v in summary.values())

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            series_redundancy([])
