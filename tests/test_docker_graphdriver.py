"""Overlay2 graph driver: layer store and mount construction."""

import pytest

from repro.common.errors import NotFoundError
from repro.docker.builder import ImageBuilder, layer_from_files
from repro.docker.graphdriver import Overlay2Driver


def make_image():
    base = ImageBuilder("base", "v1").add_file("/low", b"low").build()
    return (
        ImageBuilder("app", "v1", base=base)
        .add_file("/high", b"high")
        .build()
    )


class TestLayerStore:
    def test_register_and_lookup(self):
        driver = Overlay2Driver()
        layer = layer_from_files([("/a", b"x")])
        assert driver.register_layer(layer)
        assert driver.has_layer(layer.digest)
        assert driver.get_layer(layer.digest) is layer

    def test_register_is_idempotent(self):
        driver = Overlay2Driver()
        layer = layer_from_files([("/a", b"x")])
        driver.register_layer(layer)
        assert not driver.register_layer(layer)
        assert driver.layer_count == 1

    def test_missing_layer_raises(self):
        driver = Overlay2Driver()
        layer = layer_from_files([("/a", b"x")])
        with pytest.raises(NotFoundError):
            driver.get_layer(layer.digest)
        with pytest.raises(NotFoundError):
            driver.diff_tree(layer.digest)

    def test_remove_layer(self):
        driver = Overlay2Driver()
        layer = layer_from_files([("/a", b"x")])
        driver.register_layer(layer)
        driver.remove_layer(layer.digest)
        assert not driver.has_layer(layer.digest)
        with pytest.raises(NotFoundError):
            driver.remove_layer(layer.digest)

    def test_stored_bytes(self):
        driver = Overlay2Driver()
        layer = layer_from_files([("/a", b"x" * 100)])
        driver.register_layer(layer)
        assert driver.stored_bytes == layer.uncompressed_size

    def test_missing_layers_of_image(self):
        driver = Overlay2Driver()
        image = make_image()
        assert len(driver.missing_layers(image)) == 2
        driver.register_layer(image.layers[0])
        missing = driver.missing_layers(image)
        assert [l.digest for l in missing] == [image.layers[1].digest]


class TestMount:
    def test_mount_requires_all_layers(self):
        driver = Overlay2Driver()
        image = make_image()
        with pytest.raises(NotFoundError):
            driver.mount(image)

    def test_mount_merges_layers_top_first(self):
        driver = Overlay2Driver()
        image = make_image()
        for layer in image.layers:
            driver.register_layer(layer)
        mount = driver.mount(image)
        assert mount.read_bytes("/low") == b"low"
        assert mount.read_bytes("/high") == b"high"
        assert driver.mounts_created == 1

    def test_mounts_share_diff_trees(self):
        driver = Overlay2Driver()
        image = make_image()
        for layer in image.layers:
            driver.register_layer(layer)
        a = driver.mount(image)
        b = driver.mount(image)
        assert a.lowers[0] is b.lowers[0]

    def test_mount_lowers_are_read_only(self):
        driver = Overlay2Driver()
        image = make_image()
        for layer in image.layers:
            driver.register_layer(layer)
        mount = driver.mount(image)
        assert all(lower.read_only for lower in mount.lowers)

    def test_whiteout_layer_hides_lower_in_mount(self):
        base = ImageBuilder("base", "v1").add_file("/doomed", b"x").build()
        removing = ImageBuilder("app", "v1", base=base).remove("/doomed").build()
        driver = Overlay2Driver()
        for layer in removing.layers:
            driver.register_layer(layer)
        mount = driver.mount(removing)
        assert not mount.exists("/doomed")
