"""The Gear File Viewer: fault path, cache hits, index linking."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import NotFoundError
from repro.gear.gearfile import GearFile
from repro.gear.index import GearIndex, STUB_XATTR
from repro.gear.pool import SharedFilePool
from repro.gear.registry import GearRegistry
from repro.gear.viewer import GearFileViewer
from repro.net.link import Link
from repro.net.transport import RpcTransport
from repro.vfs.inode import Metadata
from repro.vfs.tree import FileSystemTree


def build_env():
    """An index of a small root, its files in a registry, and a viewer."""
    root = FileSystemTree()
    root.mkdir("/bin")
    root.write_file("/bin/sh", b"shell!" * 500, meta=Metadata(mode=0o755))
    root.symlink("/bin/bash", "sh")
    root.write_file("/etc/conf", b"key=value", parents=True)
    index = GearIndex.from_tree("app.gear", "v1", root)

    clock = SimClock()
    link = Link(clock, bandwidth_mbps=904)
    transport = RpcTransport(link)
    registry = GearRegistry()
    transport.bind(registry.endpoint())
    for _, node in root.iter_files():
        registry.upload(GearFile.from_blob(node.blob))

    pool = SharedFilePool()
    viewer = GearFileViewer(index, pool, transport=transport)
    return root, index, registry, pool, viewer, link, clock


class TestFaultPath:
    def test_read_faults_file_from_registry(self):
        root, index, _, pool, viewer, link, _ = build_env()
        data = viewer.read_bytes("/bin/sh")
        assert data == b"shell!" * 500
        assert viewer.fault_stats.faults == 1
        assert viewer.fault_stats.remote_fetches == 1
        assert link.log.total_bytes > 0

    def test_second_read_served_from_index(self):
        _, _, _, _, viewer, link, _ = build_env()
        viewer.read_bytes("/bin/sh")
        bytes_after_first = link.log.total_bytes
        viewer.read_bytes("/bin/sh")
        assert viewer.fault_stats.faults == 1  # no second fault
        assert link.log.total_bytes == bytes_after_first

    def test_stub_replaced_by_hard_link(self):
        _, index, _, pool, viewer, _, _ = build_env()
        viewer.read_bytes("/bin/sh")
        node = index.tree.stat("/bin/sh")
        assert STUB_XATTR not in node.meta.xattrs
        assert node.nlink >= 2  # pool + index
        entry = index.entries["/bin/sh"]
        assert pool.get(entry.identity) is node

    def test_mode_restored_on_link(self):
        _, index, _, _, viewer, _, _ = build_env()
        viewer.read_bytes("/bin/sh")
        assert index.tree.stat("/bin/sh").meta.mode == 0o755

    def test_cache_hit_avoids_network(self):
        root, _, _, pool, viewer, link, _ = build_env()
        # Pre-seed the pool, as if another image had fetched the file.
        pool.insert(GearFile.from_blob(root.read_blob("/bin/sh")))
        bytes_before = link.log.total_bytes
        viewer.read_bytes("/bin/sh")
        assert viewer.fault_stats.cache_hits == 1
        assert viewer.fault_stats.remote_fetches == 0
        assert link.log.total_bytes == bytes_before

    def test_symlink_resolves_to_faulted_file(self):
        _, _, _, _, viewer, _, _ = build_env()
        assert viewer.read_bytes("/bin/bash") == b"shell!" * 500

    def test_irregular_files_served_from_index_without_fault(self):
        _, _, _, _, viewer, link, _ = build_env()
        assert viewer.readlink("/bin/bash") == "sh"
        assert viewer.listdir("/bin") == ["bash", "sh"]
        assert viewer.fault_stats.faults == 0
        assert link.log.total_bytes == 0

    def test_missing_registry_entry_raises(self):
        _, index, registry, _, viewer, _, _ = build_env()
        for identity in list(registry.identities()):
            # Simulate a registry that lost its objects.
            registry._store.delete(identity)
        with pytest.raises(NotFoundError):
            viewer.read_bytes("/bin/sh")

    def test_no_transport_and_cold_cache_raises(self):
        root = FileSystemTree()
        root.write_file("/f", b"x", parents=True)
        index = GearIndex.from_tree("i", "v", root)
        viewer = GearFileViewer(index, SharedFilePool(), transport=None)
        with pytest.raises(NotFoundError):
            viewer.read_bytes("/f")


class TestSharing:
    def test_two_viewers_share_pool(self):
        root, index, registry, pool, viewer, link, clock = build_env()
        viewer.read_bytes("/bin/sh")
        # A second image with the same file: its viewer hits the cache.
        other_index = GearIndex.from_image(index.to_image())
        transport = viewer.transport
        second = GearFileViewer(other_index, pool, transport=transport)
        bytes_before = link.log.total_bytes
        second.read_bytes("/bin/sh")
        assert second.fault_stats.cache_hits == 1
        assert link.log.total_bytes == bytes_before

    def test_containers_of_same_image_share_index(self):
        _, index, _, pool, viewer, _, _ = build_env()
        viewer.read_bytes("/etc/conf")
        second = GearFileViewer(index, pool, transport=viewer.transport)
        second.read_bytes("/etc/conf")
        # Second viewer reads through the index's materialized inode —
        # no fault at all.
        assert second.fault_stats.faults == 0


class TestHelpers:
    def test_file_size_does_not_fault(self):
        _, _, _, _, viewer, link, _ = build_env()
        assert viewer.file_size("/bin/sh") == len(b"shell!" * 500)
        assert viewer.fault_stats.faults == 0
        assert link.log.total_bytes == 0

    def test_prefetch_faults_without_read(self):
        _, _, _, _, viewer, _, _ = build_env()
        viewer.prefetch("/bin/sh")
        assert viewer.fault_stats.faults == 1
        assert viewer.stats.reads == 0

    def test_resident_bytes_tracks_materialization(self):
        _, _, _, _, viewer, _, _ = build_env()
        assert viewer.resident_bytes() == 0
        viewer.read_bytes("/etc/conf")
        assert viewer.resident_bytes() == len(b"key=value")


class TestWritableLayer:
    def test_writes_do_not_touch_index(self):
        _, index, _, _, viewer, _, _ = build_env()
        viewer.write_file("/etc/new", b"mine", parents=True)
        assert not index.tree.exists("/etc/new")
        assert viewer.read_bytes("/etc/new") == b"mine"

    def test_overwrite_shadows_stub_without_fault(self):
        _, _, _, _, viewer, link, _ = build_env()
        viewer.write_file("/etc/conf", b"replaced")
        assert viewer.read_bytes("/etc/conf") == b"replaced"
        assert viewer.fault_stats.faults == 0
        assert link.log.total_bytes == 0

    def test_remove_stub_places_whiteout(self):
        _, index, _, _, viewer, _, _ = build_env()
        viewer.remove("/etc/conf")
        assert not viewer.exists("/etc/conf")
        assert index.tree.exists("/etc/conf")  # the index is untouched


class TestCopyUpAndAppendOnStubs:
    def test_copy_up_faults_real_content(self):
        _, index, _, pool, viewer, _, _ = build_env()
        viewer.copy_up("/etc/conf")
        # The upper layer holds the real bytes, never the stub text.
        assert viewer.upper.read_bytes("/etc/conf") == b"key=value"
        assert viewer.fault_stats.faults == 1

    def test_append_on_stub_faults_then_appends(self):
        _, _, _, _, viewer, _, _ = build_env()
        viewer.append_file("/etc/conf", b";extra=1")
        assert viewer.read_bytes("/etc/conf") == b"key=value;extra=1"

    def test_append_does_not_corrupt_index(self):
        _, index, _, _, viewer, _, _ = build_env()
        viewer.append_file("/etc/conf", b";extra=1")
        # The index (level 2) still serves the original content to other
        # containers of this image.
        other = GearFileViewer(index, viewer.pool, transport=viewer.transport)
        assert other.read_bytes("/etc/conf") == b"key=value"
