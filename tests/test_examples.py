"""Example scripts stay runnable (the fast ones, end to end)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_exist(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "serverless_cold_start.py",
            "ci_cd_rolling_updates.py",
            "registry_operator_report.py",
            "edge_node_day.py",
        } <= names

    def test_quickstart_runs_end_to_end(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "converted" in out
        assert "deployed" in out
        assert "second container read config with 0 new network bytes" in out

    def test_every_example_has_a_main_and_docstring(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            module = load_example(path.name)
            assert callable(getattr(module, "main", None)), path.name
            assert module.__doc__ and module.__doc__.strip(), path.name
