"""End-to-end integration: the full Gear life cycle on one testbed."""

import pytest

from repro.bench.environment import make_testbed, publish_images
from repro.gear.commit import commit_container
from repro.gear.index import GearIndex


class TestFullLifecycle:
    def test_publish_convert_deploy_run_commit_redeploy(self, small_corpus):
        testbed = make_testbed(bandwidth_mbps=100)
        publish_images(testbed, small_corpus.images, convert=True)

        # Deploy and run the startup task.
        from repro.bench.deploy import deploy_with_gear

        generated = small_corpus.get("nginx:v1")
        result = deploy_with_gear(testbed, generated)
        assert result.files_fetched > 0

        # Modify the running container and commit it as a new Gear image.
        container = testbed.gear_driver.containers()[0]
        container.mount.write_file("/opt/patch.bin", b"hotfix" * 100, parents=True)
        new_index, report = commit_container(
            container, "nginx.gear", "patched",
            daemon=testbed.daemon, transport=testbed.transport,
        )
        assert report.index_pushed

        # A different client deploys the committed image and sees both the
        # patch and the original content.
        fresh = testbed.fresh_client()
        patched, _ = fresh.gear_driver.deploy("nginx.gear:patched")
        assert patched.mount.read_bytes("/opt/patch.bin") == b"hotfix" * 100
        original_path = generated.trace.paths[-1]
        assert patched.mount.read_blob(original_path).size > 0

    def test_mixed_docker_and_gear_clients_coexist(self, small_corpus):
        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        docker_client = testbed.fresh_client()
        gear_client = testbed.fresh_client()

        docker_client.daemon.pull("nginx:v1")
        docker_container = docker_client.daemon.run("nginx:v1")
        gear_container, _ = gear_client.gear_driver.deploy("nginx.gear:v1")

        path = small_corpus.get("nginx:v1").trace.paths[0]
        assert (
            docker_container.mount.read_bytes(path)
            == gear_container.mount.read_bytes(path)
        )

    def test_gear_root_fs_equals_docker_root_fs(self, small_corpus):
        """The viewer must present exactly the image's filesystem."""
        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        generated = small_corpus.get("tomcat:v2")

        docker_client = testbed.fresh_client()
        docker_client.daemon.pull("tomcat:v2")
        docker_container = docker_client.daemon.run("tomcat:v2")
        gear_container, _ = testbed.gear_driver.deploy("tomcat.gear:v2")

        docker_walk = [
            (path, node.kind) for path, node in docker_container.mount.walk("/")
        ]
        gear_walk = [
            (path, node.kind) for path, node in gear_container.mount.walk("/")
        ]
        assert docker_walk == gear_walk

        # Contents match for every traced file (reading faults them in).
        for path, _ in generated.trace.accesses:
            assert (
                gear_container.mount.read_blob(path).fingerprint
                == docker_container.mount.read_blob(path).fingerprint
            )

    def test_registry_files_cover_every_index_entry(self, small_corpus):
        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        for reference in ("nginx.gear:v1", "tomcat.gear:v3"):
            testbed.gear_driver.pull_index(reference)
            index = testbed.gear_driver.get_index(reference)
            for identity in index.identities():
                assert testbed.gear_registry.query(identity), identity

    def test_index_round_trip_through_real_registry_path(self, small_corpus):
        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        manifest = testbed.docker_registry.get_manifest("nginx.gear:v1")
        assert manifest.gear_index
        layer = testbed.docker_registry.get_layer(manifest.layer_digests[0])
        from repro.docker.image import Image

        index = GearIndex.from_image(
            Image(manifest.name, manifest.tag, [layer], manifest.config,
                  gear_index=True)
        )
        generated = small_corpus.get("nginx:v1")
        assert index.file_count == len(
            list(generated.image.flatten().iter_files())
        )


class TestBandwidthAccountingConsistency:
    def test_link_bytes_match_component_accounting(self, small_corpus):
        from repro.bench.deploy import deploy_with_gear

        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        result = deploy_with_gear(testbed, small_corpus.get("nginx:v1"))
        container = testbed.gear_driver.containers()[0]
        stats = container.mount.fault_stats
        # Network bytes = index pull + per-fetch payloads + RPC framing.
        assert result.network_bytes >= stats.remote_bytes
        assert result.files_fetched == stats.remote_fetches

    def test_virtual_clock_monotonic_through_experiment(self, small_corpus):
        from repro.bench.deploy import deploy_with_docker, deploy_with_gear

        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        checkpoints = [testbed.clock.now]
        for generated in small_corpus.by_series["nginx"]:
            deploy_with_gear(testbed, generated)
            checkpoints.append(testbed.clock.now)
        assert checkpoints == sorted(checkpoints)
        assert checkpoints[-1] > checkpoints[0]
