"""DupHunter-style and layer-restructuring baselines (§VI-A)."""

import pytest

from repro.baselines.duphunter import DupHunterRegistry
from repro.baselines.layerpack import pack_layers
from repro.common.clock import SimClock
from repro.common.errors import NotFoundError
from repro.docker.builder import ImageBuilder


def version_chain(n=4):
    base = ImageBuilder("base", "v1").add_file("/shared", b"common" * 2000).build()
    images = []
    for index in range(n):
        images.append(
            ImageBuilder("app", f"v{index + 1}", base=base)
            .add_file("/app/bin", f"release {index}".encode() * 800)
            .add_file("/app/lib.so", b"stable library" * 900)
            .build()
        )
    return images


class TestDupHunter:
    def make(self, cache=0):
        clock = SimClock()
        registry = DupHunterRegistry(clock, layer_cache_bytes=cache)
        for image in version_chain():
            registry.push_image(image)
        return clock, registry

    def test_storage_is_file_deduplicated(self):
        _, registry = self.make()
        # /shared and /app/lib.so stored once; /app/bin per version.
        assert registry.unique_file_count == 2 + 4

    def test_pull_still_ships_full_layers(self):
        clock, registry = self.make()
        manifest = registry.get_manifest("app:v1")
        total_wire = 0
        for digest in manifest.layer_digests:
            layer, wire = registry.serve_layer(digest)
            total_wire += wire
            assert wire == layer.compressed_size
        # The client downloads the whole image despite registry dedup —
        # the paper's core criticism of dedup-only approaches.
        images = version_chain()
        assert total_wire == images[0].compressed_size

    def test_reconstruction_costs_registry_time(self):
        clock, registry = self.make()
        manifest = registry.get_manifest("app:v1")
        before = clock.now
        registry.serve_layer(manifest.layer_digests[0])
        assert clock.now > before
        assert registry.stats.reconstructions == 1

    def test_layer_cache_hides_repeat_reconstruction(self):
        clock, registry = self.make(cache=10_000_000)
        manifest = registry.get_manifest("app:v1")
        registry.serve_layer(manifest.layer_digests[0])
        time_after_first = clock.now
        registry.serve_layer(manifest.layer_digests[0])
        assert registry.stats.cache_hits == 1
        assert clock.now == time_after_first  # served from cache, free

    def test_cache_capacity_evicts(self):
        clock, registry = self.make(cache=1)  # too small to hold anything
        manifest = registry.get_manifest("app:v1")
        registry.serve_layer(manifest.layer_digests[0])
        registry.serve_layer(manifest.layer_digests[0])
        assert registry.stats.cache_hits == 0
        assert registry.stats.reconstructions == 2

    def test_missing_lookups(self):
        clock, registry = self.make()
        with pytest.raises(NotFoundError):
            registry.get_manifest("ghost:v1")
        from repro.common.hashing import Digest

        with pytest.raises(NotFoundError):
            registry.serve_layer(Digest("0" * 64))


class TestLayerPack:
    def test_shared_content_stored_once(self):
        layout = pack_layers(version_chain(), min_layer_bytes=1000)
        # /shared + /app/lib.so live in one shared layer (same image set);
        # each version's /app/bin lands in a residual layer.
        assert layout.shared_layer_count == 1
        assert layout.residual_layer_count == 4

    def test_beats_historical_layers_on_storage(self):
        from repro.dedup.engines import layer_level_dedup

        images = version_chain()
        packed = pack_layers(images, min_layer_bytes=1000)
        historical = layer_level_dedup(images)
        assert packed.stored_bytes < historical.storage_bytes

    def test_never_beats_file_level(self):
        from repro.dedup.engines import file_level_dedup

        images = version_chain()
        packed = pack_layers(images, min_layer_bytes=1000)
        assert packed.stored_bytes >= file_level_dedup(images).storage_bytes

    def test_min_layer_bytes_folds_small_groups(self):
        images = version_chain()
        fine = pack_layers(images, min_layer_bytes=1)
        coarse = pack_layers(images, min_layer_bytes=10**9)
        assert coarse.shared_layer_count == 0
        assert fine.shared_layer_count >= 1
        # Folding duplicates shared content into residuals: more bytes.
        assert coarse.stored_bytes >= fine.stored_bytes

    def test_layers_per_image_reported(self):
        layout = pack_layers(version_chain(), min_layer_bytes=1000)
        assert len(layout.layers_per_image) == 4
        assert layout.mean_layers_per_image == pytest.approx(2.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            pack_layers(version_chain(), min_layer_bytes=0)
