"""Deployment harness: pull/run breakdowns and the paper's qualitative shapes."""

import pytest

from repro.baselines.slacker import SlackerDriver
from repro.bench.deploy import (
    deploy_with_docker,
    deploy_with_gear,
    deploy_with_slacker,
)
from repro.bench.environment import make_testbed, publish_images


class TestDocker:
    def test_breakdown(self, published_testbed, small_corpus):
        generated = small_corpus.get("nginx:v1")
        result = deploy_with_docker(published_testbed, generated)
        assert result.system == "docker"
        assert result.pull_s > 0
        assert result.run_s > 0
        assert result.network_bytes > generated.image.compressed_size * 0.9

    def test_pull_dominates_for_docker(self, published_testbed, small_corpus):
        # §V-E: Docker's pull phase is the long one.
        result = deploy_with_docker(published_testbed, small_corpus.get("tomcat:v1"))
        assert result.pull_s > result.run_s * 0.5


class TestGear:
    def test_pull_is_tiny_run_fetches(self, published_testbed, small_corpus):
        generated = small_corpus.get("nginx:v1")
        result = deploy_with_gear(published_testbed, generated)
        assert result.pull_s < 1.0
        assert result.files_fetched > 0
        assert result.network_bytes < generated.image.compressed_size

    def test_gear_moves_fewer_bytes(self, published_testbed, small_corpus):
        generated = small_corpus.get("tomcat:v1")
        docker = deploy_with_docker(
            published_testbed.fresh_client(), generated
        )
        gear = deploy_with_gear(published_testbed.fresh_client(), generated)
        assert gear.network_bytes < docker.network_bytes

    def test_gear_beats_docker_at_limited_bandwidth(self, small_corpus):
        # At high bandwidth the advantage shrinks (§V-E1); assert the win
        # where pulling dominates.
        bed = make_testbed(bandwidth_mbps=100)
        publish_images(bed, small_corpus.images)
        generated = small_corpus.get("tomcat:v1")
        docker = deploy_with_docker(bed.fresh_client(), generated)
        gear = deploy_with_gear(bed.fresh_client(), generated)
        assert gear.total_s < docker.total_s

    def test_cache_reduces_bytes_on_version_update(
        self, published_testbed, small_corpus
    ):
        bed = published_testbed
        first = deploy_with_gear(bed, small_corpus.get("tomcat:v1"))
        second = deploy_with_gear(bed, small_corpus.get("tomcat:v2"))
        assert second.cache_hits > 0
        assert second.network_bytes < first.network_bytes

    def test_clear_cache_forces_refetch(self, published_testbed, small_corpus):
        # The §V-D no-cache scenario: a fresh client whose cache is
        # emptied before the deployment re-downloads every file.
        bed = published_testbed
        deploy_with_gear(bed.fresh_client(), small_corpus.get("nginx:v1"))
        result = deploy_with_gear(
            bed.fresh_client(), small_corpus.get("nginx:v1"), clear_cache=True
        )
        assert result.files_fetched > 0
        assert result.cache_hits == 0

    def test_gear_run_longer_than_pull(self, published_testbed, small_corpus):
        # §V-E: "the pull phase of Gear is shorter … its run time is longer."
        result = deploy_with_gear(
            published_testbed.fresh_client(), small_corpus.get("tomcat:v1"),
            clear_cache=True,
        )
        assert result.run_s > result.pull_s


class TestSlacker:
    def test_breakdown(self, published_testbed, small_corpus):
        driver = SlackerDriver(published_testbed.clock, published_testbed.link)
        result = deploy_with_slacker(
            driver, published_testbed, small_corpus.get("nginx:v1")
        )
        assert result.system == "slacker"
        assert result.pull_s < 1.0
        assert result.network_bytes > 0

    def test_slacker_moves_more_bytes_than_gear(
        self, published_testbed, small_corpus
    ):
        # Blocks travel uncompressed with metadata amplification.
        generated = small_corpus.get("nginx:v1")
        gear = deploy_with_gear(
            published_testbed.fresh_client(), generated, clear_cache=True
        )
        driver = SlackerDriver(published_testbed.clock, published_testbed.link)
        slacker = deploy_with_slacker(driver, published_testbed, generated)
        assert slacker.network_bytes > gear.network_bytes


class TestBandwidthSweep:
    def test_gear_advantage_grows_as_bandwidth_drops(self, small_corpus):
        # Fig. 9: speedups 1.4× @904 → 5× @5 Mbps.
        speedups = []
        for bandwidth in (100, 5):
            bed = make_testbed(bandwidth_mbps=bandwidth)
            publish_images(bed, small_corpus.images)
            generated = small_corpus.get("tomcat:v1")
            docker = deploy_with_docker(bed.fresh_client(), generated)
            gear = deploy_with_gear(bed.fresh_client(), generated)
            speedups.append(docker.total_s / gear.total_s)
        assert speedups[1] > speedups[0] > 1.0
