"""Failure injection: missing objects, corrupted stubs, torn-down services.

The framework must fail loudly and precisely — a registry losing an
object, a malformed index, or an unbound service should surface as the
typed error closest to the cause, never as silent wrong data.
"""

import pytest

from repro.blob import Blob
from repro.common.errors import (
    GearError,
    NotFoundError,
    TransportError,
)
from repro.bench.environment import make_testbed, publish_images
from repro.gear.index import GearIndex, STUB_MAGIC, STUB_XATTR
from repro.gear.pool import SharedFilePool
from repro.gear.viewer import GearFileViewer
from repro.vfs.inode import Metadata
from repro.vfs.tree import FileSystemTree


class TestRegistryLoss:
    def test_lost_gear_file_surfaces_as_not_found(self, small_corpus):
        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        container, _ = testbed.gear_driver.deploy("nginx.gear:v1")
        # The registry loses every object (disk wipe).
        for identity in list(testbed.gear_registry.identities()):
            testbed.gear_registry.delete(identity)
        path = small_corpus.get("nginx:v1").trace.paths[0]
        with pytest.raises(NotFoundError):
            container.mount.read_bytes(path)

    def test_lost_layer_blocks_pull(self, small_corpus):
        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=False)
        manifest = testbed.docker_registry.get_manifest("nginx:v1")
        testbed.docker_registry.delete_layer(manifest.layer_digests[-1])
        with pytest.raises(NotFoundError):
            testbed.daemon.pull("nginx:v1")

    def test_delete_layer_of_unknown_digest_raises(self, small_corpus):
        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=False)
        manifest = testbed.docker_registry.get_manifest("nginx:v1")
        digest = manifest.layer_digests[0]
        testbed.docker_registry.delete_layer(digest)
        with pytest.raises(NotFoundError):
            testbed.docker_registry.delete_layer(digest)

    def test_unbound_endpoint_is_transport_error(self):
        from repro.common.clock import SimClock
        from repro.net.link import Link
        from repro.net.transport import RpcTransport

        transport = RpcTransport(Link(SimClock()))
        with pytest.raises(TransportError):
            transport.call("gear-registry", "query", "abc")


class TestMalformedIndexes:
    def test_truncated_stub_rejected_at_parse(self):
        tree = FileSystemTree()
        meta = Metadata()
        tree.write_file("/f", Blob.from_text(f"{STUB_MAGIC}broken"), meta=meta,
                        parents=True)
        from repro.docker.builder import image_from_tree

        image = image_from_tree("bad.gear", "v1", tree, gear_index=True)
        with pytest.raises(GearError):
            GearIndex.from_image(image)

    def test_stub_without_entry_fails_fault(self):
        # A viewer whose index tree carries a stub xattr but whose entry
        # table lost the path: the fault must not fabricate content.
        root = FileSystemTree()
        root.write_file("/f", b"real", parents=True)
        index = GearIndex.from_tree("i", "v", root)
        del index.entries["/f"]
        viewer = GearFileViewer(index, SharedFilePool(), transport=None)
        with pytest.raises(GearError):
            viewer.read_bytes("/f")

    def test_index_from_regular_image_rejected(self, small_corpus):
        with pytest.raises(GearError):
            GearIndex.from_image(small_corpus.get("nginx:v1").image)


class TestCacheDamage:
    def test_cache_drop_mid_flight_refetches(self, small_corpus):
        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        container, _ = testbed.gear_driver.deploy("nginx.gear:v1")
        trace = small_corpus.get("nginx:v1").trace
        container.mount.read_bytes(trace.paths[0])
        # Operator wipes the level-1 cache under a live container: already
        # linked files keep working (hard links), new faults re-download.
        testbed.gear_driver.pool.clear()
        assert container.mount.read_blob(trace.paths[0]).size > 0
        container.mount.read_bytes(trace.paths[-1])
        assert container.mount.fault_stats.remote_fetches >= 2

    def test_eviction_never_breaks_linked_files(self, small_corpus):
        testbed = make_testbed(pool_capacity_bytes=1)
        # Capacity 1 byte: every insert must evict, but linked inodes are
        # pinned, so reads keep working and failures count up.
        publish_images(testbed, small_corpus.images, convert=True)
        container, _ = testbed.gear_driver.deploy("nginx.gear:v1")
        trace = small_corpus.get("nginx:v1").trace
        data_first = container.mount.read_bytes(trace.paths[0])
        data_again = container.mount.read_bytes(trace.paths[0])
        assert data_first == data_again


class TestConverterEdgeCases:
    def test_empty_directory_only_image(self):
        from repro.docker.builder import ImageBuilder
        from repro.common.clock import SimClock
        from repro.docker.registry import DockerRegistry
        from repro.gear.converter import GearConverter
        from repro.gear.registry import GearRegistry

        clock = SimClock()
        docker_registry = DockerRegistry()
        converter = GearConverter(clock, docker_registry, GearRegistry())
        image = ImageBuilder("dirs", "v1").mkdir("/only/dirs/here").build()
        docker_registry.push_image(image)
        index, report = converter.convert("dirs:v1")
        assert report.file_count == 0
        assert index.tree.is_dir("/only/dirs/here")

    def test_symlink_only_image(self):
        from repro.docker.builder import ImageBuilder
        from repro.common.clock import SimClock
        from repro.docker.registry import DockerRegistry
        from repro.gear.converter import GearConverter
        from repro.gear.registry import GearRegistry

        clock = SimClock()
        docker_registry = DockerRegistry()
        converter = GearConverter(clock, docker_registry, GearRegistry())
        image = (
            ImageBuilder("links", "v1")
            .add_file("/target", b"t")
            .add_symlink("/link", "/target")
            .build()
        )
        docker_registry.push_image(image)
        index, _ = converter.convert("links:v1")
        assert index.tree.readlink("/link") == "/target"


class TestIntegrityVerification:
    def test_corrupted_download_raises_integrity_error(self, small_corpus):
        from repro.blob import Blob
        from repro.common.errors import IntegrityError
        from repro.gear.gearfile import GearFile

        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        container, _ = testbed.gear_driver.deploy("nginx.gear:v1")
        # Corrupt one referenced object in place: same identity key,
        # different bytes.  Every re-fetch keeps returning the damaged
        # object, so after the quarantine/refetch budget the viewer must
        # surface the fault — never serve or cache the poison.
        index = testbed.gear_driver.get_index("nginx.gear:v1")
        path, entry = next(iter(sorted(index.entries.items())))
        victim = entry.identity
        testbed.gear_registry.corrupt(
            victim, GearFile(identity=victim, blob=Blob.from_bytes(b"evil bytes"))
        )
        with pytest.raises(IntegrityError):
            container.mount.read_bytes(path)
        stats = container.mount.fault_stats
        assert stats.integrity_failures >= 1
        assert stats.refetches == container.mount.integrity_refetch_limit
        assert not testbed.gear_driver.pool.contains(victim)
        assert testbed.gear_driver.pool.is_quarantined(victim)

    def test_registry_side_repair_lifts_quarantine(self, small_corpus):
        from repro.blob import Blob
        from repro.gear.gearfile import GearFile

        testbed = make_testbed()
        publish_images(testbed, small_corpus.images, convert=True)
        container, _ = testbed.gear_driver.deploy("nginx.gear:v1")
        index = testbed.gear_driver.get_index("nginx.gear:v1")
        path, entry = next(iter(sorted(index.entries.items())))
        victim = entry.identity
        good = testbed.gear_registry.download(victim)
        testbed.gear_registry.corrupt(
            victim, GearFile(identity=victim, blob=Blob.from_bytes(b"bad"))
        )
        from repro.common.errors import IntegrityError

        with pytest.raises(IntegrityError):
            container.mount.read_bytes(path)
        # The operator restores the object; the next read re-fetches,
        # verifies, lifts the quarantine, and caches the good copy.
        testbed.gear_registry.corrupt(victim, good)
        assert container.mount.read_blob(path).fingerprint == victim
        assert testbed.gear_driver.pool.contains(victim)
        assert not testbed.gear_driver.pool.is_quarantined(victim)

    def test_uid_identities_skip_fingerprint_check(self):
        from repro.blob import Blob
        from repro.common.clock import SimClock
        from repro.gear.gearfile import GearFile
        from repro.gear.index import GearFileEntry, GearIndex
        from repro.gear.pool import SharedFilePool
        from repro.gear.registry import GearRegistry
        from repro.gear.viewer import GearFileViewer
        from repro.net.link import Link
        from repro.net.transport import RpcTransport
        from repro.vfs.tree import FileSystemTree

        clock = SimClock()
        transport = RpcTransport(Link(clock))
        registry = GearRegistry()
        transport.bind(registry.endpoint())
        blob = Blob.from_bytes(b"collision-handled content")
        registry.upload(GearFile(identity="uid-00000001-abc", blob=blob))

        root = FileSystemTree()
        root.write_file("/f", blob, parents=True)
        index = GearIndex.from_tree(
            "i", "v", root,
            identity_for={root.stat("/f").ino: "uid-00000001-abc"},
        )
        viewer = GearFileViewer(index, SharedFilePool(), transport=transport)
        assert viewer.read_bytes("/f") == b"collision-handled content"
