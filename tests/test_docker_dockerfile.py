"""The Dockerfile mini-language."""

import pytest

from repro.docker.builder import ImageBuilder
from repro.docker.dockerfile import (
    DockerfileBuilder,
    DockerfileError,
    build_from_dockerfile,
    parse,
)


def base_image():
    return (
        ImageBuilder("debian", "v1")
        .add_file("/bin/sh", b"shell")
        .with_env(PATH="/bin")
        .build()
    )


def resolver(reference):
    assert reference == "debian:v1"
    return base_image()


class TestParse:
    def test_basic(self):
        instructions = parse("FROM scratch\nCOPY a /a\n")
        assert [i.keyword for i in instructions] == ["FROM", "COPY"]
        assert instructions[1].args == ("a", "/a")

    def test_comments_and_blanks_skipped(self):
        instructions = parse("# header\n\nFROM scratch\n  # inline-ish\n")
        assert len(instructions) == 1

    def test_line_continuation(self):
        instructions = parse("FROM scratch\nENV A=1 \\\n    B=2\n")
        assert instructions[1].args == ("A=1", "B=2")

    def test_dangling_continuation_rejected(self):
        with pytest.raises(DockerfileError):
            parse("FROM scratch\nENV A=1 \\")

    def test_quoted_arguments(self):
        instructions = parse('FROM scratch\nLABEL note="hello world"\n')
        assert instructions[1].args == ("note=hello world",)

    def test_keyword_case_insensitive(self):
        assert parse("from scratch")[0].keyword == "FROM"


class TestBuild:
    def test_scratch_copy_build(self):
        image = build_from_dockerfile(
            "FROM scratch\nCOPY app /opt/app\n",
            "app", "v1",
            context={"app": b"binary"},
        )
        assert image.flatten().read_bytes("/opt/app") == b"binary"

    def test_from_base_stacks_layers(self):
        text = "FROM debian:v1\nCOPY app /opt/app\n"
        image = build_from_dockerfile(
            text, "app", "v1", context={"app": b"x"}, resolve_base=resolver
        )
        assert len(image.layers) == 2
        assert image.layers[0].digest == base_image().layers[0].digest

    def test_base_config_inherited_and_extended(self):
        text = "FROM debian:v1\nENV MODE=prod\nCOPY app /app\n"
        image = build_from_dockerfile(
            text, "app", "v1", context={"app": b"x"}, resolve_base=resolver
        )
        assert image.config.env_dict() == {"PATH": "/bin", "MODE": "prod"}

    def test_copy_group_is_one_layer(self):
        text = "FROM scratch\nCOPY a /a\nCOPY b /b\n"
        image = build_from_dockerfile(
            text, "app", "v1", context={"a": b"1", "b": b"2"}
        )
        assert len(image.layers) == 1

    def test_run_breaks_layers(self):
        text = (
            "FROM scratch\nCOPY a /a\nRUN mkdir -p /data\nCOPY b /b\n"
        )
        image = build_from_dockerfile(
            text, "app", "v1", context={"a": b"1", "b": b"2"}
        )
        assert len(image.layers) == 3

    def test_run_rm_produces_whiteout(self):
        text = "FROM debian:v1\nRUN rm -rf /bin/sh\n"
        image = build_from_dockerfile(text, "app", "v1", resolve_base=resolver)
        assert not image.flatten().exists("/bin/sh")

    def test_run_ln_and_touch(self):
        text = (
            "FROM scratch\nCOPY bin /usr/bin/tool\n"
            "RUN ln -s /usr/bin/tool /usr/bin/alias\n"
            "RUN touch /var/run/ready\n"
        )
        image = build_from_dockerfile(
            text, "app", "v1", context={"bin": b"t"}
        )
        tree = image.flatten()
        assert tree.readlink("/usr/bin/alias") == "/usr/bin/tool"
        assert tree.read_bytes("/var/run/ready") == b""

    def test_workdir_relative_copy(self):
        text = "FROM scratch\nWORKDIR /srv/app\nCOPY conf settings.ini\n"
        image = build_from_dockerfile(
            text, "app", "v1", context={"conf": b"[x]"}
        )
        assert image.flatten().read_bytes("/srv/app/settings.ini") == b"[x]"
        assert image.config.workdir == "/srv/app"

    def test_entrypoint_cmd_label(self):
        text = (
            'FROM scratch\nCOPY a /a\nLABEL team=infra\n'
            "ENTRYPOINT /a\nCMD --serve\n"
        )
        image = build_from_dockerfile(text, "app", "v1", context={"a": b"x"})
        assert image.config.entrypoint == ("/a",)
        assert image.config.cmd == ("--serve",)
        assert dict(image.config.labels) == {"team": "infra"}


class TestErrors:
    def test_must_start_with_from(self):
        with pytest.raises(DockerfileError):
            build_from_dockerfile("COPY a /a\n", "x", "v1", context={"a": b""})

    def test_double_from_rejected(self):
        with pytest.raises(DockerfileError):
            build_from_dockerfile(
                "FROM scratch\nCOPY a /a\nFROM scratch\n", "x", "v1",
                context={"a": b""},
            )

    def test_missing_context_entry(self):
        with pytest.raises(DockerfileError):
            build_from_dockerfile("FROM scratch\nCOPY nope /n\n", "x", "v1")

    def test_unknown_instruction(self):
        with pytest.raises(DockerfileError):
            build_from_dockerfile("FROM scratch\nEXPOSE 80\n", "x", "v1")

    def test_unsupported_run_command(self):
        with pytest.raises(DockerfileError):
            build_from_dockerfile(
                "FROM scratch\nRUN apt-get install nginx\n", "x", "v1"
            )

    def test_from_without_resolver(self):
        with pytest.raises(DockerfileError):
            build_from_dockerfile("FROM debian:v1\n", "x", "v1")

    def test_bad_env_pair(self):
        with pytest.raises(DockerfileError):
            build_from_dockerfile("FROM scratch\nENV NOVALUE\n", "x", "v1")


class TestGearInterop:
    def test_dockerfile_image_converts_to_gear(self):
        from repro.common.clock import SimClock
        from repro.docker.registry import DockerRegistry
        from repro.gear.converter import GearConverter
        from repro.gear.registry import GearRegistry

        image = build_from_dockerfile(
            "FROM scratch\nCOPY app /opt/app\nENV MODE=x\n",
            "built", "v1", context={"app": b"binary" * 100},
        )
        clock = SimClock()
        docker_registry = DockerRegistry()
        docker_registry.push_image(image)
        converter = GearConverter(clock, docker_registry, GearRegistry())
        index, report = converter.convert("built:v1")
        assert report.file_count == 1
        assert index.config.env_dict()["MODE"] == "x"
