"""Discrete-event scheduler semantics and sequential-equivalence goldens.

The scheduler refactor must be invisible at concurrency 1: a deployment
executed inside a single scheduler process has to reproduce the seed's
sequential cost model *byte for byte* — same clock, same transfer log,
same :class:`DeploymentResult`.  The golden tests here pin that across
the Fig. 9 bandwidth grid and under a fault plan.
"""

import pytest

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.common.clock import (
    Process,
    SchedulerError,
    SimClock,
    SimEvent,
    SimScheduler,
)
from repro.net.faults import FaultPlan, OutageWindow

#: Fig. 9's bandwidth grid (Mbps).
FIG9_BANDWIDTHS = (904, 100, 20, 5)


# -- scheduler kernel ----------------------------------------------------


class TestScheduler:
    def test_attach_detach(self):
        clock = SimClock()
        assert clock.scheduler is None
        with SimScheduler(clock) as scheduler:
            assert clock.scheduler is scheduler
        assert clock.scheduler is None

    def test_double_attach_rejected(self):
        clock = SimClock()
        with SimScheduler(clock):
            with pytest.raises(SchedulerError):
                SimScheduler(clock)

    def test_schedule_orders_by_time(self):
        clock = SimClock()
        fired = []
        with SimScheduler(clock) as scheduler:
            scheduler.schedule(2.0, lambda: fired.append(("b", clock.now)))
            scheduler.schedule(1.0, lambda: fired.append(("a", clock.now)))
            scheduler.run()
        assert fired == [("a", 1.0), ("b", 2.0)]

    def test_equal_times_break_ties_by_schedule_order(self):
        clock = SimClock()
        fired = []
        with SimScheduler(clock) as scheduler:
            for tag in ("first", "second", "third"):
                scheduler.schedule(1.0, lambda t=tag: fired.append(t))
            scheduler.run()
        assert fired == ["first", "second", "third"]

    def test_generator_processes_interleave_deterministically(self):
        clock = SimClock()
        steps = []

        def worker(tag, delay):
            for _ in range(3):
                yield delay
                steps.append((tag, clock.now))

        with SimScheduler(clock) as scheduler:
            scheduler.spawn(worker("a", 1.0))
            scheduler.spawn(worker("b", 1.0))
            scheduler.run()
        # Same wake times: spawn order decides — a before b, every round.
        assert steps == [
            ("a", 1.0), ("b", 1.0),
            ("a", 2.0), ("b", 2.0),
            ("a", 3.0), ("b", 3.0),
        ]

    def test_thread_process_advances_suspend(self):
        clock = SimClock()
        marks = []

        def worker(tag, delay):
            for _ in range(2):
                clock.advance(delay)
                marks.append((tag, clock.now))

        with SimScheduler(clock) as scheduler:
            scheduler.spawn(worker, "slow", 2.0, name="slow")
            scheduler.spawn(worker, "fast", 1.0, name="fast")
            scheduler.run()
        assert marks == [
            ("fast", 1.0), ("slow", 2.0), ("fast", 2.0), ("slow", 4.0)
        ]
        assert clock.now == 4.0

    def test_process_result_and_join(self):
        clock = SimClock()

        def compute():
            clock.advance(1.5)
            return 42

        with SimScheduler(clock) as scheduler:
            process = scheduler.spawn(compute, name="compute")
            assert scheduler.join(process).result == 42
        assert process.done
        assert process.finished_at == 1.5

    def test_join_from_inside_a_process(self):
        clock = SimClock()

        def child():
            yield 2.0
            return "done"

        def parent(scheduler):
            spawned = scheduler.spawn(child())
            result = yield spawned
            return (result, clock.now)

        with SimScheduler(clock) as scheduler:
            root = scheduler.spawn(parent(scheduler))
            assert scheduler.join(root).result == ("done", 2.0)

    def test_simevent_wait_and_fire(self):
        clock = SimClock()
        seen = []

        def waiter(event):
            yield event
            seen.append(("woken", clock.now))

        def firer(event):
            yield 3.0
            event.fire()

        with SimScheduler(clock) as scheduler:
            event = SimEvent(clock)
            scheduler.spawn(waiter(event))
            scheduler.spawn(firer(event))
            scheduler.run()
        assert seen == [("woken", 3.0)]

    def test_errors_propagate_from_run(self):
        clock = SimClock()

        def boom():
            clock.advance(1.0)
            raise ValueError("kaput")

        with SimScheduler(clock) as scheduler:
            scheduler.spawn(boom, name="boom")
            with pytest.raises(ValueError, match="kaput"):
                scheduler.run()

    def test_advance_without_scheduler_is_seed_behaviour(self):
        clock = SimClock(trace=True)
        clock.advance(1.0, "pull")
        clock.advance(2.0, "run")
        assert clock.now == 3.0
        assert clock.trace == [(1.0, "pull"), (3.0, "run")]

    def test_spawn_returns_process(self):
        clock = SimClock()
        with SimScheduler(clock) as scheduler:
            process = scheduler.spawn(lambda: None, name="noop")
            assert isinstance(process, Process)
            scheduler.run()
        assert process.done

    def test_default_process_names_are_monotone_and_unique(self):
        """Default names come from a monotone counter, never recycled.

        Spawning across multiple ``run`` rounds — after earlier processes
        have completed — must keep minting fresh names, so logs and trace
        tracks from different rounds can never alias.
        """
        clock = SimClock()
        names = []
        with SimScheduler(clock) as scheduler:
            for round_ in range(3):
                batch = [scheduler.spawn(lambda: None) for _ in range(4)]
                scheduler.run()
                names.extend(process.name for process in batch)
            # An explicit name consumes a counter slot too, keeping the
            # default sequence strictly monotone.
            named = scheduler.spawn(lambda: None, name="explicit")
            after = scheduler.spawn(lambda: None)
            scheduler.run()
        assert names == [f"proc-{i}" for i in range(12)]
        assert named.name == "explicit"
        assert after.name == "proc-13"
        assert len(set(names)) == len(names)

    def test_events_processed_counts_executed_events(self):
        clock = SimClock()
        with SimScheduler(clock) as scheduler:
            assert scheduler.events_processed == 0
            scheduler.schedule(1.0, lambda: None)
            cancelled = scheduler.schedule(2.0, lambda: None)
            cancelled.cancel()
            scheduler.run()
            assert scheduler.events_processed == 1


class TestDeferredAdvance:
    """Virtual-time debt: deferred advances settle before they can leak."""

    def test_deferred_advances_sum_like_immediate_ones(self):
        """debt + seconds uses the same float summation as two advances."""
        immediate = SimClock()
        immediate.advance(0.125, "a")
        immediate.advance(0.375, "b")
        deferred = SimClock(trace=True)
        deferred.advance_deferred(0.125, "a")
        assert deferred.now == 0.0  # accrued, not yet applied
        deferred.advance(0.375, "b")
        assert deferred.now == immediate.now
        assert deferred.trace == [(0.5, "a+b")]

    def test_settle_debt_applies_outstanding_debt(self):
        clock = SimClock()
        clock.advance_deferred(1.5, "meta")
        clock.settle_debt()
        assert clock.now == 1.5
        clock.settle_debt()  # no debt: a no-op
        assert clock.now == 1.5

    def test_negative_deferred_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance_deferred(-0.1)

    def test_process_debt_settles_before_event_fire_reaches_waiters(self):
        """A waiter must observe the firer's deferred time as elapsed."""
        clock = SimClock()
        seen = {}
        with SimScheduler(clock) as scheduler:
            event = SimEvent(clock)

            def producer():
                clock.advance(1.0, "work")
                clock.advance_deferred(0.25, "store")
                event.fire()

            def consumer():
                event.wait()
                seen["at"] = clock.now

            scheduler.spawn(consumer, name="consumer")
            scheduler.spawn(producer, name="producer")
            scheduler.run()
        assert seen["at"] == 1.25

    def test_zero_waiter_fire_leaves_debt_for_next_advance(self):
        """With nobody waiting, debt rides through to the next advance."""
        clock = SimClock(trace=True)
        with SimScheduler(clock) as scheduler:
            event = SimEvent(clock)

            def lone():
                clock.advance_deferred(0.25, "store")
                event.fire()  # no waiters: must not force a settle
                assert clock.now == 0.0
                clock.advance(0.75, "read")

            scheduler.spawn(lone, name="lone")
            scheduler.run()
        assert clock.now == 1.0
        assert (1.0, "store+read") in clock.trace

    def test_join_settles_spawner_debt(self):
        clock = SimClock()
        finished = {}
        with SimScheduler(clock) as scheduler:

            def child():
                finished["child_started"] = clock.now

            def parent():
                clock.advance_deferred(0.5, "meta")
                # spawn settles debt, so the child starts at 0.5
                handle = scheduler.spawn(child, name="child")
                scheduler.join(handle)

            scheduler.spawn(parent, name="parent")
            scheduler.run()
        assert finished["child_started"] == 0.5

    def test_process_finishing_with_debt_settles_it(self):
        clock = SimClock()
        with SimScheduler(clock) as scheduler:
            process = scheduler.spawn(
                lambda: clock.advance_deferred(0.25, "tail"), name="tail"
            )
            scheduler.run()
        assert process.finished_at == 0.25
        assert clock.now == 0.25


# -- sequential-equivalence goldens --------------------------------------


def _deploy_pair(testbed, generated):
    docker = deploy_with_docker(testbed.fresh_client(), generated)
    gear = deploy_with_gear(testbed.fresh_client(), generated)
    return docker, gear


def _publish(bed, small_corpus):
    publish_images(bed, small_corpus.images, convert=True)


@pytest.mark.parametrize("bandwidth", FIG9_BANDWIDTHS)
def test_golden_single_process_matches_sequential(small_corpus, bandwidth):
    """One scheduler process replays the seed model byte-identically."""
    generated = small_corpus.get("tomcat:v1")

    sequential = make_testbed(bandwidth_mbps=bandwidth)
    _publish(sequential, small_corpus)
    mark = sequential.clock.now
    seq_docker, seq_gear = _deploy_pair(sequential, generated)

    scheduled = make_testbed(bandwidth_mbps=bandwidth)
    _publish(scheduled, small_corpus)
    assert scheduled.clock.now == mark
    with SimScheduler(scheduled.clock) as scheduler:
        process = scheduler.spawn(
            _deploy_pair, scheduled, generated, name="deploys"
        )
        sch_docker, sch_gear = scheduler.join(process).result

    # Bit-exact equality — not approx: the flow model must degenerate to
    # the seed formula when a transfer never shares the link.
    assert scheduled.clock.now == sequential.clock.now
    assert sch_docker == seq_docker
    assert sch_gear == seq_gear
    assert scheduled.link.log.records == sequential.link.log.records
    assert scheduled.link.log.total_bytes == sequential.link.log.total_bytes
    assert scheduled.link.log.total_time == sequential.link.log.total_time


def test_golden_matches_sequential_under_fault_plan(small_corpus):
    """Retry/backoff/outage paths are schedulable without drift."""
    plan = FaultPlan(
        seed="golden-faults",
        drop_rate=0.12,
        corrupt_rate=0.05,
        outages=(OutageWindow(start_s=1.0, duration_s=2.0),),
        targets=("gear-registry",),
    )
    generated = small_corpus.get("nginx:v1")

    def run(bed):
        bed.arm_faults()
        return deploy_with_gear(bed.fresh_client(), generated)

    sequential = make_testbed(bandwidth_mbps=20, fault_plan=plan)
    _publish(sequential, small_corpus)
    seq_result = run(sequential)

    scheduled = make_testbed(bandwidth_mbps=20, fault_plan=plan)
    _publish(scheduled, small_corpus)
    with SimScheduler(scheduled.clock) as scheduler:
        process = scheduler.spawn(run, scheduled, name="faulty-deploy")
        sch_result = scheduler.join(process).result

    assert seq_result.retries > 0  # the plan actually bit
    assert sch_result == seq_result
    assert scheduled.clock.now == sequential.clock.now
    assert scheduled.link.log.records == sequential.link.log.records
