"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


SMALL = ["--scale", "0.15", "--versions", "2", "--series", "nginx"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["dedup"])
        assert args.seed == 7
        assert args.command == "dedup"

    def test_options_after_subcommand(self):
        args = build_parser().parse_args(["dedup", "--seed", "3"])
        assert args.seed == 3


class TestCommands:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "nginx" in out
        assert "Linux Distro" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "app.gear:v1" in out
        assert "faulted" in out

    def test_dedup(self, capsys):
        assert main(["dedup", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "Chunk-level" in out

    def test_storage(self, capsys):
        assert main(["storage", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "saving" in out

    def test_deploy(self, capsys):
        assert main(["deploy", *SMALL, "--target", "nginx",
                     "--bandwidth", "50"]) == 0
        out = capsys.readouterr().out
        assert "Slacker" in out
        assert "v2" in out

    def test_crash_sweep(self, capsys):
        assert main(["crash", *SMALL, "--target", "nginx"]) == 0
        out = capsys.readouterr().out
        assert "crash sweep" in out
        for point in ("mid-fetch", "post-fetch", "mid-commit", "mid-link"):
            assert point in out
        assert "NO" not in out  # every point resume-equivalent

    def test_crash_sweep_json(self, capsys):
        import json

        assert main(["crash", *SMALL, "--target", "nginx", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report["points"]) == {
            "mid-fetch", "post-fetch", "mid-commit", "mid-link"
        }
        for cell in report["points"].values():
            assert cell["crashed"]
            assert cell["fs_equivalent"]
            assert cell["refetched_committed"] == 0
