"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


SMALL = ["--scale", "0.15", "--versions", "2", "--series", "nginx"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["dedup"])
        assert args.seed == 7
        assert args.command == "dedup"

    def test_options_after_subcommand(self):
        args = build_parser().parse_args(["dedup", "--seed", "3"])
        assert args.seed == 3


class TestCommands:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "nginx" in out
        assert "Linux Distro" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "app.gear:v1" in out
        assert "faulted" in out

    def test_dedup(self, capsys):
        assert main(["dedup", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "Chunk-level" in out

    def test_storage(self, capsys):
        assert main(["storage", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "saving" in out

    def test_deploy(self, capsys):
        assert main(["deploy", *SMALL, "--target", "nginx",
                     "--bandwidth", "50"]) == 0
        out = capsys.readouterr().out
        assert "Slacker" in out
        assert "v2" in out
