"""Cross-cutting property-based tests (hypothesis).

These exercise the load-bearing invariants of the reproduction:

* overlay mounts behave like a reference dict-of-paths model;
* Gear indexes round-trip through the Docker image format for arbitrary
  trees;
* dedup accounting is invariant to image order and monotone in
  granularity;
* the shared pool never exceeds capacity while unpinned entries exist.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.blob import Blob
from repro.dedup.engines import chunk_level_dedup, file_level_dedup, layer_level_dedup
from repro.docker.builder import ImageBuilder
from repro.gear.gearfile import GearFile
from repro.gear.index import GearIndex
from repro.gear.pool import EvictionPolicy, SharedFilePool
from repro.vfs.overlay import OverlayMount
from repro.vfs.tar import LayerArchive
from repro.vfs.tree import FileSystemTree

# -- strategies ----------------------------------------------------------

_NAMES = st.sampled_from(["a", "b", "c", "dir1", "dir2", "file", "data.bin"])
_PATHS = st.builds(
    lambda parts: "/" + "/".join(parts),
    st.lists(_NAMES, min_size=1, max_size=3),
)
_CONTENT = st.binary(min_size=0, max_size=64)

_FILE_MAPS = st.dictionaries(_PATHS, _CONTENT, min_size=0, max_size=8)


def build_tree(file_map):
    tree = FileSystemTree()
    for path, content in sorted(file_map.items()):
        try:
            tree.write_file(path, content, parents=True)
        except Exception:
            # Path conflicts (a file where a dir is needed) are skipped —
            # the strategy may produce /a and /a/b.
            pass
    return tree


def tree_files(tree):
    return {
        path: node.blob.materialize() for path, node in tree.iter_files()
    }


# -- overlay vs reference model -------------------------------------------


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
@given(_FILE_MAPS, _FILE_MAPS, st.lists(_PATHS, max_size=4))
def test_overlay_matches_reference_model(lower_map, upper_map, deletions):
    """Merged view == lower ∪ upper with upper priority, minus deletions."""
    lower = build_tree(lower_map).freeze()
    mount = OverlayMount([lower])
    model = dict(tree_files(lower))

    for path, content in sorted(upper_map.items()):
        try:
            mount.write_file(path, content, parents=True)
        except Exception:
            continue
        model[path] = content
        # Writing a file at /p shadows any model entries under /p.
        doomed = [k for k in model if k != path and k.startswith(path + "/")]
        for key in doomed:
            del model[key]
        # Parent dirs may shadow lower *files* at the same path.
        parts = path.split("/")[1:-1]
        prefix = ""
        for part in parts:
            prefix += "/" + part
            model.pop(prefix, None)

    for path in deletions:
        try:
            mount.remove(path, recursive=True)
        except Exception:
            continue
        model.pop(path, None)
        for key in [k for k in model if k.startswith(path + "/")]:
            del model[key]

    merged = {
        path: mount.read_bytes(path)
        for path, node in mount.walk("/")
        if node.is_file
    }
    assert merged == model


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(_FILE_MAPS)
def test_overlay_to_tree_preserves_files(file_map):
    lower = build_tree(file_map).freeze()
    mount = OverlayMount([lower])
    assert tree_files(mount.to_tree()) == tree_files(lower)


# -- layer archive round-trips ---------------------------------------------


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(_FILE_MAPS)
def test_archive_extract_is_identity_on_digest(file_map):
    tree = build_tree(file_map)
    archive = LayerArchive.from_tree(tree)
    assert LayerArchive.from_tree(archive.extract()).digest == archive.digest


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(_FILE_MAPS)
def test_gear_index_roundtrip_for_arbitrary_trees(file_map):
    tree = build_tree(file_map)
    index = GearIndex.from_tree("i", "v", tree)
    restored = GearIndex.from_image(index.to_image())
    assert restored.digest() == index.digest()
    assert restored.entries == index.entries
    # Every entry matches the original file's fingerprint and size.
    for path, entry in index.entries.items():
        blob = tree.read_blob(path)
        assert entry.identity == blob.fingerprint
        assert entry.size == blob.size


# -- dedup invariants ----------------------------------------------------------


@st.composite
def image_lists(draw):
    file_maps = draw(st.lists(_FILE_MAPS, min_size=1, max_size=4))
    images = []
    for index, file_map in enumerate(file_maps):
        builder = ImageBuilder(f"img{index}", "v1")
        builder.add_file("/anchor", b"shared-anchor")
        for path, content in sorted(file_map.items()):
            try:
                builder.add_file(path, content)
            except Exception:
                continue
        images.append(builder.build())
    return images


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(image_lists())
def test_dedup_order_invariance(images):
    forward = file_level_dedup(images)
    backward = file_level_dedup(list(reversed(images)))
    assert forward.object_count == backward.object_count
    assert forward.storage_bytes == backward.storage_bytes


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(image_lists())
def test_dedup_granularity_monotone(images):
    layer = layer_level_dedup(images)
    file = file_level_dedup(images)
    chunk = chunk_level_dedup(images)
    assert chunk.storage_bytes <= file.storage_bytes
    assert file.logical_bytes <= layer.logical_bytes


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(image_lists())
def test_dedup_idempotent_under_duplication(images):
    """Adding a byte-identical image changes nothing at any granularity."""
    doubled = images + [images[0]]
    assert (
        file_level_dedup(doubled).storage_bytes
        == file_level_dedup(images).storage_bytes
    )
    assert (
        layer_level_dedup(doubled).object_count
        == layer_level_dedup(images).object_count
    )


# -- pool capacity invariant -----------------------------------------------------


@settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 400), st.booleans()),
        min_size=1,
        max_size=30,
    ),
    st.sampled_from([EvictionPolicy.FIFO, EvictionPolicy.LRU]),
)
def test_pool_respects_capacity_with_unpinned_entries(operations, policy):
    capacity = 1000
    pool = SharedFilePool(capacity_bytes=capacity, policy=policy)
    for tag, size, pin in operations:
        if size > capacity:
            continue
        inode = pool.insert(GearFile.from_blob(Blob.synthetic(f"t{tag}", size)))
        if pin:
            inode.nlink += 1
        # Invariant: the pool only exceeds capacity when pinned entries
        # force it to — at most the just-inserted entry may be unpinned
        # (everything else evictable was already evicted).
        if pool.used_bytes > capacity:
            unpinned = [
                identity
                for identity in list(pool.identities())
                if pool.get(identity).nlink <= 1
            ]
            assert len(unpinned) <= 1
            assert pool.eviction_failures > 0


@settings(max_examples=50)
@given(st.lists(st.integers(0, 20), min_size=1, max_size=40))
def test_pool_content_addressing_is_stable(tags):
    pool = SharedFilePool()
    inodes = {}
    for tag in tags:
        gear_file = GearFile.from_blob(Blob.synthetic(f"s{tag}", 100))
        inode = pool.insert(gear_file)
        if tag in inodes:
            assert inodes[tag] is inode
        inodes[tag] = inode
    assert pool.file_count == len(set(tags))
