"""Shared fixtures: tiny corpora and wired testbeds.

Corpus construction is the expensive part of many tests, so the small
corpora are session-scoped; tests must not mutate the corpus images
(testbeds and registries are rebuilt per test instead).
"""

from __future__ import annotations

import pytest

from repro.bench.environment import make_testbed, publish_images
from repro.workloads.corpus import Corpus, CorpusBuilder, CorpusConfig


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """nginx + tomcat (+ their bases/runtimes), 4 versions, scaled down."""
    config = CorpusConfig(
        seed=7,
        file_scale=0.25,
        size_scale=0.1,
        series_names=("nginx", "tomcat"),
        versions_cap=4,
    )
    return CorpusBuilder(config).build()


@pytest.fixture(scope="session")
def distro_corpus() -> Corpus:
    """A single distro series (debian), 3 versions, tiny."""
    config = CorpusConfig(
        seed=7,
        file_scale=0.2,
        size_scale=0.05,
        series_names=("debian",),
        versions_cap=3,
    )
    return CorpusBuilder(config).build()


@pytest.fixture
def testbed():
    """A fresh two-node testbed at the paper's 904 Mbps."""
    return make_testbed()


@pytest.fixture
def published_testbed(small_corpus):
    """A testbed with the small corpus pushed and converted."""
    bed = make_testbed()
    publish_images(bed, small_corpus.images, convert=True)
    return bed
