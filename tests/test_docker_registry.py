"""Registry behaviour: layer dedup, manifests, RPC surface."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import NotFoundError
from repro.docker.builder import ImageBuilder, layer_from_files
from repro.docker.registry import DockerRegistry
from repro.net.link import Link
from repro.net.transport import RpcTransport


def make_images():
    base = ImageBuilder("debian", "v1").add_file("/b", b"base" * 100).build()
    child = ImageBuilder("nginx", "v1", base=base).add_file("/n", b"ngx" * 100).build()
    return base, child


class TestPush:
    def test_layer_dedup_on_push(self):
        registry = DockerRegistry()
        base, child = make_images()
        assert registry.push_image(base) == (1, 0)
        # Child shares the base layer: only its own layer travels.
        assert registry.push_image(child) == (1, 1)
        assert registry.layer_count == 2
        assert registry.manifest_count == 2

    def test_manifest_requires_layers_present(self):
        registry = DockerRegistry()
        base, _ = make_images()
        with pytest.raises(NotFoundError):
            registry.push_manifest(base.manifest())

    def test_repush_same_image_stores_nothing_new(self):
        registry = DockerRegistry()
        base, _ = make_images()
        registry.push_image(base)
        before = registry.stored_bytes
        registry.push_image(base)
        assert registry.stored_bytes == before


class TestPull:
    def test_get_manifest_and_layer(self):
        registry = DockerRegistry()
        base, _ = make_images()
        registry.push_image(base)
        manifest = registry.get_manifest("debian:v1")
        layer = registry.get_layer(manifest.layer_digests[0])
        assert layer.digest == base.layers[0].digest

    def test_missing_lookups_raise(self):
        registry = DockerRegistry()
        with pytest.raises(NotFoundError):
            registry.get_manifest("nope:v1")
        layer = layer_from_files([("/x", b"y")])
        with pytest.raises(NotFoundError):
            registry.get_layer(layer.digest)

    def test_delete_manifest(self):
        registry = DockerRegistry()
        base, _ = make_images()
        registry.push_image(base)
        registry.delete_manifest("debian:v1")
        assert not registry.has_manifest("debian:v1")
        with pytest.raises(NotFoundError):
            registry.delete_manifest("debian:v1")


class TestAccounting:
    def test_stored_bytes_is_compressed_plus_manifests(self):
        registry = DockerRegistry()
        base, _ = make_images()
        registry.push_image(base)
        expected = base.layers[0].compressed_size + base.manifest().size_bytes
        assert registry.stored_bytes == expected

    def test_references_sorted(self):
        registry = DockerRegistry()
        base, child = make_images()
        registry.push_image(base)
        registry.push_image(child)
        assert registry.references() == ["debian:v1", "nginx:v1"]


class TestRpcSurface:
    def test_endpoint_roundtrip_charges_bytes(self):
        clock = SimClock()
        link = Link(clock, bandwidth_mbps=904)
        transport = RpcTransport(link)
        registry = DockerRegistry()
        transport.bind(registry.endpoint())
        base, _ = make_images()
        registry.push_image(base)

        manifest = transport.call(
            DockerRegistry.ENDPOINT_NAME, "get_manifest", "debian:v1"
        )
        layer = transport.call(
            DockerRegistry.ENDPOINT_NAME, "get_layer", manifest.layer_digests[0]
        )
        assert layer.digest == base.layers[0].digest
        # Response bytes: manifest size + compressed layer size.
        assert link.log.total_bytes >= manifest.size_bytes + layer.compressed_size

    def test_has_layer_over_rpc(self):
        clock = SimClock()
        transport = RpcTransport(Link(clock))
        registry = DockerRegistry()
        transport.bind(registry.endpoint())
        base, _ = make_images()
        assert not transport.call(
            DockerRegistry.ENDPOINT_NAME, "has_layer", base.layers[0].digest
        )
        registry.push_image(base)
        assert transport.call(
            DockerRegistry.ENDPOINT_NAME, "has_layer", base.layers[0].digest
        )
