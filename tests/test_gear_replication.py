"""The replicated Gear registry tier end to end.

Write fan-out keeps every replica serving the same catalog; the
anti-entropy scrub repairs holes and bit rot; byzantine replicas are
demoted by the viewer's fingerprint check; and a healthy replica tier is
byte- and time-identical to the single-registry testbed.  The crash test
kills a client mid-hedged-fetch, fscks the local store, and resumes
against a different replica — the golden resume-equivalence invariant
(PR 3) must hold across a replica switch.
"""

from __future__ import annotations

import pytest

from repro.blob import Blob
from repro.bench.deploy import (
    container_fs_digest,
    deploy_with_gear,
    deploy_with_gear_resumable,
)
from repro.bench.environment import make_ha_testbed, make_testbed, publish_images
from repro.common.clock import SimScheduler
from repro.common.errors import ClientCrash
from repro.gear.gearfile import GearFile
from repro.gear.journal import FETCH_BEGIN
from repro.net.faults import CrashPlan, CrashPoint, byzantine_plan


@pytest.fixture
def ha_testbed(small_corpus):
    testbed = make_ha_testbed(replicas=3)
    publish_images(testbed, small_corpus.images, convert=True)
    return testbed


class TestWriteFanOut:
    def test_conversion_replicates_to_every_replica(self, ha_testbed):
        replicas = ha_testbed.ha.replica_set.replicas
        counts = [r.registry.file_count for r in replicas]
        assert counts[0] > 0
        assert len(set(counts)) == 1
        assert len({tuple(sorted(r.registry.identities())) for r in replicas}) == 1

    def test_replica_set_quacks_like_a_registry(self, ha_testbed):
        replica_set = ha_testbed.gear_registry
        identity = next(iter(replica_set.identities()))
        assert replica_set.query(identity)
        assert replica_set.download(identity).identity == identity
        assert replica_set.stat(identity).size > 0
        assert replica_set.file_count > 0
        assert replica_set.stored_bytes > 0

    def test_delete_fans_out(self, ha_testbed):
        replica_set = ha_testbed.gear_registry
        identity = next(iter(replica_set.identities()))
        replica_set.delete(identity)
        for replica in ha_testbed.ha.replica_set.replicas:
            assert not replica.registry.query(identity)


class TestScrub:
    def test_clean_tier_scrubs_to_zero_repairs(self, ha_testbed):
        report = ha_testbed.gear_registry.scrub()
        assert report.examined > 0
        assert report.repaired == 0
        assert report.unrepairable == 0
        assert report.bytes_copied == 0
        assert report.duration_s > 0  # verification hashing is not free

    def test_scrub_repairs_missing_copy(self, ha_testbed):
        replicas = ha_testbed.ha.replica_set.replicas
        identity = next(iter(replicas[0].registry.identities()))
        replicas[1].registry.delete(identity)
        report = ha_testbed.gear_registry.scrub()
        assert report.repaired_missing == 1
        assert report.bytes_copied > 0
        assert replicas[1].registry.query(identity)
        assert (
            replicas[1].registry.download(identity).blob.fingerprint == identity
        )

    def test_scrub_repairs_corrupt_copy(self, ha_testbed):
        replicas = ha_testbed.ha.replica_set.replicas
        identity = next(
            i for i in replicas[0].registry.identities()
            if not i.startswith("uid-")
        )
        rotten = GearFile(identity=identity, blob=Blob.from_bytes(b"bit rot"))
        replicas[2].registry.corrupt(identity, rotten)
        report = ha_testbed.gear_registry.scrub()
        assert report.repaired_corrupt == 1
        assert (
            replicas[2].registry.download(identity).blob.fingerprint == identity
        )

    def test_scrub_is_deterministic_per_round(self, small_corpus):
        def run():
            testbed = make_ha_testbed(replicas=3, seed="scrub-det")
            publish_images(testbed, small_corpus.images[:2], convert=True)
            replicas = testbed.ha.replica_set.replicas
            victim = sorted(replicas[0].registry.identities())[0]
            replicas[1].registry.delete(victim)
            report = testbed.gear_registry.scrub()
            return (report, testbed.clock.now)

        assert run() == run()


class TestHealthyTierIdentity:
    def test_single_client_deploy_byte_identical_to_plain_testbed(
        self, small_corpus
    ):
        """HA with healthy replicas adds zero virtual time and bytes.

        Primary-first selection sends every sequential fetch to replica
        0 over a link identical to the plain testbed's; hedging and
        probing need a scheduler, so the sequential deploy never pays
        for them.
        """
        generated = small_corpus.images[0]
        plain = make_testbed()
        publish_images(plain, small_corpus.images, convert=True)
        ha = make_ha_testbed(replicas=3)
        publish_images(ha, small_corpus.images, convert=True)

        before_plain = plain.clock.now
        before_ha = ha.clock.now
        r_plain = deploy_with_gear(plain, generated)
        r_ha = deploy_with_gear(ha, generated)
        assert r_ha.network_bytes == r_plain.network_bytes
        assert r_ha.network_requests == r_plain.network_requests
        assert r_ha.total_s == pytest.approx(r_plain.total_s)
        assert (ha.clock.now - before_ha) == pytest.approx(
            plain.clock.now - before_plain
        )
        assert not r_ha.degraded
        assert r_ha.retries == 0 and r_ha.errors == 0

    def test_only_primary_serves_in_sequential_mode(self, ha_testbed, small_corpus):
        deploy_with_gear(ha_testbed, small_corpus.images[0])
        replicas = ha_testbed.ha.replica_set.replicas
        assert replicas[0].stats.serves > 0
        assert replicas[1].stats.serves == 0
        assert replicas[2].stats.serves == 0


class TestByzantineReplica:
    def test_lying_replica_is_demoted_and_deploy_survives(self, small_corpus):
        generated = small_corpus.images[0]
        testbed = make_ha_testbed(
            replicas=3,
            replica_fault_plans=[byzantine_plan(seed="t-byz")],
        )
        publish_images(testbed, [generated], convert=True)
        testbed.arm_faults()
        result = deploy_with_gear(testbed, generated)
        replicas = testbed.ha.replica_set.replicas
        stats = testbed.ha.policy.stats
        # The first download came back with wrong bytes that passed the
        # wire checksum; the viewer's fingerprint check caught it and
        # demoted the serving replica before the re-fetch.
        assert stats.demotions >= 1
        assert not replicas[0].breaker.available(testbed.clock.now)
        assert replicas[1].stats.serves > 0
        assert not result.degraded
        viewer_stats = testbed.gear_driver.containers()[-1].mount.fault_stats
        assert viewer_stats.integrity_failures >= 1
        assert viewer_stats.refetches >= 1


class TestCrashDuringHedgedFetch:
    def test_crash_fsck_resume_against_different_replica(self, small_corpus):
        """Kill the client mid-fetch under hedging, then resume elsewhere.

        The crashed attempt ran under the scheduler with hedged fetches
        live; recovery (PR 3's fsck) repairs the local store; the resumed
        deployment is forced onto a different replica (the one it
        crashed against is taken out).  Golden invariants: the resumed
        container fs digests identically to an uncrashed control run,
        and nothing recovery committed is re-fetched.
        """
        generated = small_corpus.images[0]

        control_bed = make_ha_testbed(replicas=3, seed="crash-ha")
        publish_images(control_bed, [generated], convert=True)
        control = deploy_with_gear_resumable(control_bed, generated, None)
        assert not control.crashed

        testbed = make_ha_testbed(replicas=3, seed="crash-ha")
        publish_images(testbed, [generated], convert=True)
        driver = testbed.gear_driver
        driver.arm_crash(
            CrashPlan(point=CrashPoint.MID_FETCH, seed="t-ha-crash")
        )
        with SimScheduler(testbed.clock) as scheduler:
            proc = scheduler.spawn(
                lambda: deploy_with_gear(testbed, generated),
                name="crashing-client",
            )
            with pytest.raises(ClientCrash):
                scheduler.run_until(proc)
            # The node lost power: in-flight hedges die with it.
            scheduler.abort()
        driver.disarm_crash()

        recovery = driver.recover()
        held = set(driver.pool.identities())

        # The replica the crashed run was fetching from is taken out of
        # rotation; the resume must succeed against a different one.
        replicas = testbed.ha.replica_set.replicas
        assert replicas[0].stats.serves > 0  # the crashed run used it
        serves_before = [r.stats.serves for r in replicas]
        replicas[0].breaker.cooldown_s = 1e9
        replicas[0].breaker.force_open(testbed.clock.now)

        result = deploy_with_gear(testbed, generated)
        refetched = sum(
            1
            for record in driver.journal.records
            if record.op == FETCH_BEGIN and record.identity in held
        )
        container = driver.containers()[-1]
        assert container_fs_digest(container) == control.fs_digest
        assert refetched == 0
        assert not result.degraded
        assert replicas[0].stats.serves == serves_before[0]
        assert replicas[1].stats.serves > serves_before[1]
        assert recovery is not None
