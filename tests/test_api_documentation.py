"""API surface quality gates.

A reproduction meant for adoption needs a documented, importable public
surface: every module, public class, and public function under ``repro``
carries a docstring, and the top-level ``__all__`` names resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_every_module_has_a_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize(
    "module", ALL_MODULES, ids=[m.__name__ for m in ALL_MODULES]
)
def test_public_classes_and_functions_are_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module.__name__}: {undocumented}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
