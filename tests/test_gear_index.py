"""Gear index: construction, stub encoding, Docker round-trip."""

import pytest

from repro.common.errors import GearError
from repro.docker.builder import ImageBuilder
from repro.gear.index import GearFileEntry, GearIndex, STUB_MAGIC, STUB_XATTR
from repro.vfs.inode import Metadata
from repro.vfs.tree import FileSystemTree


def sample_root():
    tree = FileSystemTree()
    tree.mkdir("/bin")
    tree.write_file("/bin/sh", b"shell binary" * 100, meta=Metadata(mode=0o755))
    tree.symlink("/bin/bash", "sh")
    tree.mkdir("/etc/app", parents=True)
    tree.write_file("/etc/app/conf", b"key=value")
    return tree


class TestEntries:
    def test_stub_roundtrip(self):
        entry = GearFileEntry(path="/f", identity="a" * 32, size=123, mode=0o644)
        parsed = GearFileEntry.parse_stub("/f", entry.stub_content(), 0o644)
        assert parsed == entry

    def test_parse_rejects_non_stub(self):
        with pytest.raises(GearError):
            GearFileEntry.parse_stub("/f", "just text", 0o644)

    def test_parse_rejects_malformed(self):
        with pytest.raises(GearError):
            GearFileEntry.parse_stub("/f", f"{STUB_MAGIC}nosize", 0o644)

    def test_unique_id_identities_roundtrip(self):
        # Collision-handled files use uid-… identities containing dashes.
        entry = GearFileEntry(
            path="/f", identity="uid-00000001-abcdef12", size=5, mode=0o600
        )
        parsed = GearFileEntry.parse_stub("/f", entry.stub_content(), 0o600)
        assert parsed.identity == "uid-00000001-abcdef12"
        assert parsed.size == 5


class TestFromTree:
    def test_replaces_files_with_stubs(self):
        index = GearIndex.from_tree("app.gear", "v1", sample_root())
        assert index.file_count == 2
        stub = index.tree.read_bytes("/bin/sh").decode()
        assert stub.startswith(STUB_MAGIC)
        assert STUB_XATTR in index.tree.stat("/bin/sh").meta.xattrs

    def test_preserves_structure_and_metadata(self):
        index = GearIndex.from_tree("app.gear", "v1", sample_root())
        assert index.tree.readlink("/bin/bash") == "sh"
        assert index.tree.is_dir("/etc/app")
        assert index.tree.stat("/bin/sh").meta.mode == 0o755

    def test_entries_carry_fingerprints_and_sizes(self):
        root = sample_root()
        index = GearIndex.from_tree("app.gear", "v1", root)
        entry = index.entries["/bin/sh"]
        assert entry.identity == root.read_blob("/bin/sh").fingerprint
        assert entry.size == len(b"shell binary" * 100)

    def test_identity_override_for_collisions(self):
        root = sample_root()
        ino = root.stat("/etc/app/conf").ino
        index = GearIndex.from_tree(
            "app.gear", "v1", root, identity_for={ino: "uid-x"}
        )
        assert index.entries["/etc/app/conf"].identity == "uid-x"

    def test_index_is_tiny_compared_to_image(self):
        root = sample_root()
        index = GearIndex.from_tree("app.gear", "v1", root)
        assert index.index_bytes < root.total_file_bytes() + 8192
        assert index.represented_bytes == root.total_file_bytes()

    def test_identities_deduplicated(self):
        tree = FileSystemTree()
        tree.write_file("/a", b"same", parents=True)
        tree.write_file("/b", b"same", parents=True)
        index = GearIndex.from_tree("i", "v", tree)
        assert len(list(index.identities())) == 1


class TestImageRoundTrip:
    def test_to_image_is_single_layer_flagged(self):
        index = GearIndex.from_tree("app.gear", "v1", sample_root())
        image = index.to_image()
        assert image.gear_index
        assert len(image.layers) == 1

    def test_from_image_restores_everything(self):
        original = GearIndex.from_tree("app.gear", "v1", sample_root())
        restored = GearIndex.from_image(original.to_image())
        assert restored.digest() == original.digest()
        assert restored.entries == original.entries
        assert restored.tree.readlink("/bin/bash") == "sh"
        assert STUB_XATTR in restored.tree.stat("/bin/sh").meta.xattrs

    def test_from_image_rejects_regular_images(self):
        image = ImageBuilder("plain", "v1").add_file("/f", b"x").build()
        with pytest.raises(GearError):
            GearIndex.from_image(image)

    def test_from_image_rejects_multi_layer(self):
        base = ImageBuilder("a", "v1").add_file("/f", b"x").build()
        multi = ImageBuilder("b", "v1", base=base).add_file("/g", b"y").build()
        multi.gear_index = True
        with pytest.raises(GearError):
            GearIndex.from_image(multi)

    def test_config_travels_with_index(self):
        from repro.docker.image import ImageConfig

        index = GearIndex.from_tree(
            "app.gear", "v1", sample_root(),
            config=ImageConfig.make(env={"PATH": "/bin"}),
        )
        restored = GearIndex.from_image(index.to_image())
        assert restored.config.env_dict() == {"PATH": "/bin"}


class TestDigest:
    def test_digest_sensitive_to_entries(self):
        a = GearIndex.from_tree("i", "v", sample_root())
        root = sample_root()
        root.write_file("/etc/app/conf", b"changed")
        b = GearIndex.from_tree("i", "v", root)
        assert a.digest() != b.digest()
