"""Metrics registry semantics: instruments, stat groups, one reset.

Histograms get boundary-value attention (inclusive upper edges, the
``+inf`` overflow bucket, empty snapshots) because bucket-edge drift is
the classic way two "identical" runs stop diffing clean.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSet,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset(self):
        counter = Counter()
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_and_add_move_both_directions(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.add(-3.5)
        assert gauge.value == 6.5

    def test_reset(self):
        gauge = Gauge()
        gauge.set(-2.0)
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        # Inclusive upper edges: exactly 1.0 belongs to the 1.0 bucket,
        # not the next one up.
        histogram = Histogram(bounds=(1.0, 5.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts() == {"1": 1, "5": 0, "inf": 0}

    def test_value_above_last_bound_overflows_to_inf(self):
        histogram = Histogram(bounds=(1.0, 5.0))
        histogram.observe(5.000001)
        assert histogram.bucket_counts() == {"1": 0, "5": 0, "inf": 1}

    def test_sum_and_count_ride_along(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.25)
        histogram.observe(3.0)
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(3.25)

    def test_quantile_of_empty_histogram_is_zero(self):
        histogram = Histogram(bounds=(1.0, 5.0))
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(0.999) == 0.0

    def test_quantile_single_bucket_returns_its_upper_edge(self):
        histogram = Histogram(bounds=(2.0,))
        histogram.observe(0.5)
        assert histogram.quantile(0.0) == 2.0
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(1.0) == 2.0

    def test_quantile_walks_cumulative_counts(self):
        histogram = Histogram(bounds=(1.0, 5.0, 10.0))
        for value in (0.5, 0.5, 3.0, 7.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.75) == 5.0
        assert histogram.quantile(1.0) == 10.0

    def test_quantile_overflow_bucket_is_inf(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(99.0)
        assert histogram.quantile(0.999) == float("inf")

    def test_quantile_rank_matches_percentile_convention(self):
        # q=0.999 over 1000 observations selects rank 999, not 1000 —
        # the same nearest-rank arithmetic as repro.common.stats.
        histogram = Histogram(bounds=(1.0, 2.0))
        for i in range(1000):
            histogram.observe(1.0 if i < 999 else 2.0)
        assert histogram.quantile(0.999) == 1.0

    def test_quantile_rejects_out_of_range(self):
        histogram = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.1)

    def test_empty_snapshot_is_all_zeros(self):
        histogram = Histogram(bounds=(0.5, 2.0))
        out = {}
        histogram.snapshot_into("lat", out)
        assert out == {
            "lat.le_0.5": 0,
            "lat.le_2": 0,
            "lat.le_inf": 0,
            "lat.sum": 0.0,
            "lat.count": 0,
        }

    def test_snapshot_keeps_label_suffix_on_every_component(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.5)
        out = {}
        histogram.snapshot_into("lat{op=pull}", out)
        assert out == {
            "lat.le_1{op=pull}": 1,
            "lat.le_inf{op=pull}": 0,
            "lat.sum{op=pull}": 0.5,
            "lat.count{op=pull}": 1,
        }

    def test_reset_zeroes_buckets_sum_and_count(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.5)
        histogram.observe(9.0)
        histogram.reset()
        assert histogram.bucket_counts() == {"1": 0, "inf": 0}
        assert histogram.sum == 0.0
        assert histogram.count == 0

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_rejects_non_ascending_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 1.0))


@dataclasses.dataclass
class _FakeStats(MetricSet):
    hits: int = 0
    misses: int = 0


class TestMetricSet:
    def test_reset_restores_declared_defaults(self):
        stats = _FakeStats(hits=7, misses=3)
        stats.reset()
        assert stats == _FakeStats()

    def test_metrics_lists_numeric_fields_in_order(self):
        stats = _FakeStats(hits=2, misses=1)
        assert stats.metrics() == {"hits": 2, "misses": 1}


class TestMetricsRegistry:
    def test_instruments_are_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("rpc_calls", endpoint="gear")
        b = registry.counter("rpc_calls", endpoint="gear")
        c = registry.counter("rpc_calls", endpoint="docker")
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", zone="eu", tier="hot")
        b = registry.counter("x", tier="hot", zone="eu")
        assert a is b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("lat")
        with pytest.raises(TypeError):
            registry.gauge("lat")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(1.0, 3.0))

    def test_register_rejects_non_metric_set(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.register("pool", object())

    def test_register_replaces_at_the_same_key(self):
        # fresh_client() re-registers its new pool over the old one.
        registry = MetricsRegistry()
        old = _FakeStats(hits=5)
        new = _FakeStats()
        registry.register("pool", old)
        registry.register("pool", new)
        new.hits = 1
        assert registry.snapshot()["pool.hits"] == 1

    def test_snapshot_is_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_counter").inc(2)
        registry.gauge("a_gauge", zone="eu").set(1.5)
        registry.register("stats", _FakeStats(hits=3), node="n0")
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["b_counter"] == 2
        assert snapshot["a_gauge{zone=eu}"] == 1.5
        assert snapshot["stats.hits{node=n0}"] == 3
        assert snapshot["stats.misses{node=n0}"] == 0

    def test_single_reset_covers_instruments_groups_and_callbacks(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(9)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        stats = registry.register("stats", _FakeStats(hits=4))
        spend = {"value": 2.5}

        def zero_spend():
            spend["value"] = 0.0

        registry.register_callback(
            "retry", lambda: {"spent_s": spend["value"]}, reset=zero_spend
        )
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["calls"] == 0
        assert snapshot["lat.count"] == 0
        assert stats.hits == 0
        assert snapshot["retry.spent_s"] == 0.0

    def test_reset_spares_derived_callbacks(self):
        # Breaker trips belong to the breaker's lifecycle, not the
        # measurement epoch: a reset=None callback must survive reset.
        registry = MetricsRegistry()
        registry.register_callback("breaker", lambda: {"trips": 3})
        registry.reset()
        assert registry.snapshot()["breaker.trips"] == 3

    def test_groups_lists_registered_keys(self):
        registry = MetricsRegistry()
        registry.register("pool", _FakeStats())
        registry.register("rpc", _FakeStats(), endpoint="gear")
        assert registry.groups() == ["pool", "rpc{endpoint=gear}"]
