"""The Gear Converter: image → (index, files), costs, dedup, removal."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import NotFoundError
from repro.docker.builder import ImageBuilder
from repro.docker.registry import DockerRegistry
from repro.gear.converter import GearConverter
from repro.gear.index import GearIndex
from repro.gear.registry import GearRegistry
from repro.storage.disk import Disk, HDD, SSD


def make_env(disk_profile=HDD):
    clock = SimClock()
    docker_registry = DockerRegistry()
    gear_registry = GearRegistry()
    converter = GearConverter(
        clock, docker_registry, gear_registry, disk=Disk(clock, disk_profile)
    )
    base = ImageBuilder("debian", "v1").add_file("/bin/sh", b"sh" * 2000).build()
    app = (
        ImageBuilder("nginx", "v1", base=base)
        .add_file("/usr/nginx", b"ngx" * 3000)
        .add_file("/etc/conf", b"conf")
        .build()
    )
    docker_registry.push_image(base)
    docker_registry.push_image(app)
    return clock, docker_registry, gear_registry, converter


class TestConversion:
    def test_produces_index_and_files(self):
        _, docker_registry, gear_registry, converter = make_env()
        index, report = converter.convert("nginx:v1")
        assert isinstance(index, GearIndex)
        assert index.file_count == 3
        assert gear_registry.file_count == 3
        assert report.gear_files_new == 3
        assert report.collisions == 0

    def test_index_image_published_in_docker_registry(self):
        _, docker_registry, _, converter = make_env()
        converter.convert("nginx:v1")
        manifest = docker_registry.get_manifest("nginx.gear:v1")
        assert manifest.gear_index

    def test_index_preserves_config(self):
        clock = SimClock()
        docker_registry = DockerRegistry()
        gear_registry = GearRegistry()
        converter = GearConverter(clock, docker_registry, gear_registry)
        from repro.docker.image import ImageConfig

        image = (
            ImageBuilder(
                "app", "v1", config=ImageConfig.make(env={"LANG": "C"})
            )
            .add_file("/f", b"x")
            .build()
        )
        docker_registry.push_image(image)
        index, _ = converter.convert("app:v1")
        # "it is necessary to copy the environmental variables and the
        # configuration from the original Docker image" (§III-C).
        assert index.config.env_dict() == {"LANG": "C"}

    def test_cross_image_file_dedup(self):
        _, _, gear_registry, converter = make_env()
        _, first = converter.convert("debian:v1")
        _, second = converter.convert("nginx:v1")
        # nginx contains debian's /bin/sh: already uploaded.
        assert second.gear_files_deduped == 1
        assert second.gear_files_new == 2
        assert gear_registry.file_count == 3

    def test_keep_original_false_removes_source(self):
        _, docker_registry, _, converter = make_env()
        converter.convert("nginx:v1", keep_original=False)
        assert not docker_registry.has_manifest("nginx:v1")
        assert docker_registry.has_manifest("nginx.gear:v1")

    def test_missing_image_raises(self):
        _, _, _, converter = make_env()
        with pytest.raises(NotFoundError):
            converter.convert("ghost:v1")

    def test_index_suffix(self):
        _, docker_registry, _, converter = make_env()
        converter.convert("nginx:v1", index_suffix="-gi")
        assert docker_registry.has_manifest("nginx-gi:v1")


class TestCosts:
    def test_conversion_takes_virtual_time(self):
        clock, _, _, converter = make_env()
        _, report = converter.convert("nginx:v1")
        assert report.duration_s > 0
        assert clock.now == pytest.approx(report.duration_s)

    def test_ssd_is_faster_than_hdd(self):
        _, _, _, hdd_converter = make_env(HDD)
        _, hdd_report = hdd_converter.convert("nginx:v1")
        _, _, _, ssd_converter = make_env(SSD)
        _, ssd_report = ssd_converter.convert("nginx:v1")
        # Fig. 6: SSDs cut node-series conversion by ~66%.
        assert ssd_report.duration_s < hdd_report.duration_s

    def test_bigger_image_takes_longer(self):
        clock = SimClock()
        docker_registry = DockerRegistry()
        converter = GearConverter(clock, docker_registry, GearRegistry())
        small = ImageBuilder("small", "v1").add_file("/f", b"x" * 100).build()
        big_builder = ImageBuilder("big", "v1")
        for index in range(40):
            big_builder.add_file(f"/f{index}", bytes([index % 251]) * 50_000)
        big = big_builder.build()
        docker_registry.push_image(small)
        docker_registry.push_image(big)
        _, small_report = converter.convert("small:v1")
        _, big_report = converter.convert("big:v1")
        assert big_report.duration_s > small_report.duration_s

    def test_report_counts_nodes_and_bytes(self):
        _, _, _, converter = make_env()
        _, report = converter.convert("nginx:v1")
        assert report.image_bytes > 0
        assert report.node_count >= report.file_count
        assert report.index_bytes > 0
