"""Layers, images, manifests, and config."""

import pytest

from repro.common.errors import ReproError
from repro.docker.builder import layer_from_files
from repro.docker.image import Image, ImageConfig, Layer, Manifest


def make_layer(*files):
    return layer_from_files(files or [("/f", b"content")])


class TestLayer:
    def test_digest_is_content_addressed(self):
        assert make_layer(("/a", b"x")) == make_layer(("/a", b"x"))
        assert make_layer(("/a", b"x")) != make_layer(("/a", b"y"))

    def test_sizes(self):
        layer = make_layer(("/a", b"x" * 1000))
        assert layer.uncompressed_size > 1000
        assert layer.compressed_size < layer.uncompressed_size
        assert layer.file_count == 1

    def test_diff_tree_is_readable(self):
        layer = make_layer(("/a/b", b"deep"))
        tree = layer.diff_tree()
        assert tree.read_bytes("/a/b") == b"deep"

    def test_hashable(self):
        assert len({make_layer(("/a", b"x")), make_layer(("/a", b"x"))}) == 1


class TestImageConfig:
    def test_make_normalizes(self):
        config = ImageConfig.make(env={"B": "2", "A": "1"}, cmd=["run"])
        assert config.env == (("A", "1"), ("B", "2"))
        assert config.env_dict() == {"A": "1", "B": "2"}

    def test_identity_tokens_cover_fields(self):
        config = ImageConfig.make(
            env={"X": "1"}, entrypoint=["/e"], cmd=["c"], workdir="/w",
            labels={"l": "v"},
        )
        tokens = config.identity_tokens()
        assert "env:X=1" in tokens
        assert "entrypoint:/e" in tokens
        assert "workdir:/w" in tokens
        assert "label:l=v" in tokens


class TestImage:
    def test_requires_layers(self):
        with pytest.raises(ReproError):
            Image("a", "b", [])

    def test_reference(self):
        image = Image("nginx", "1.17", [make_layer()])
        assert image.reference == "nginx:1.17"

    def test_flatten_applies_layers_in_order(self):
        bottom = make_layer(("/f", b"old"), ("/keep", b"k"))
        top = make_layer(("/f", b"new"))
        image = Image("i", "t", [bottom, top])
        tree = image.flatten()
        assert tree.read_bytes("/f") == b"new"
        assert tree.read_bytes("/keep") == b"k"

    def test_sizes_sum_layers(self):
        a, b = make_layer(("/a", b"1")), make_layer(("/b", b"22"))
        image = Image("i", "t", [a, b])
        assert image.uncompressed_size == a.uncompressed_size + b.uncompressed_size
        assert image.file_count == 2


class TestManifest:
    def test_from_image(self):
        image = Image("nginx", "1.17", [make_layer()], ImageConfig.make(env={"A": "1"}))
        manifest = image.manifest()
        assert manifest.reference == "nginx:1.17"
        assert manifest.layer_digests == (image.layers[0].digest,)
        assert manifest.layer_sizes == (image.layers[0].compressed_size,)
        assert manifest.config.env_dict() == {"A": "1"}
        assert not manifest.gear_index

    def test_digest_covers_config(self):
        image_a = Image("i", "t", [make_layer()], ImageConfig.make(env={"A": "1"}))
        image_b = Image("i", "t", [make_layer()], ImageConfig.make(env={"A": "2"}))
        assert image_a.manifest().digest != image_b.manifest().digest

    def test_misaligned_lists_rejected(self):
        layer = make_layer()
        with pytest.raises(ReproError):
            Manifest(
                name="i", tag="t",
                layer_digests=(layer.digest,),
                layer_sizes=(),
                config=ImageConfig.make(),
            )

    def test_size_scales_with_layers(self):
        one = Image("i", "t", [make_layer()]).manifest()
        two = Image("i", "t", [make_layer(), make_layer(("/x", b"y"))]).manifest()
        assert two.size_bytes > one.size_bytes
