"""Golden replay suite: the refactored simulator must replay the past.

The PR-7 speed refactor (generator-native scheduler fast paths, pooled
handoffs, the incremental fair-share link model) is only acceptable if
behaviour is preserved, not just "close".  This suite pins that down
with one seeded workload that deliberately crosses every hot path at
once — mixed generator/call processes, contended flows on a shared
link, sole flows on a fast link, a mid-flight cancellation, SimEvent
waits, joins, spans, instants, and metrics:

* **double-run byte-identity** — running the workload twice must yield
  byte-identical canonical JSON (records, Chrome trace, metrics);
* **fixture field-identity** — the run must match fixtures recorded on
  the *pre-refactor* scheduler (``tests/fixtures/golden_replay_*.json``)
  on two seeds.  Floats are canonicalized to 12 significant digits:
  that absorbs ULP-level reassociation drift from the incremental
  fair-share arithmetic while still detecting any real behaviour change
  (the smallest modelled cost is ~1e-4 s, eight orders of magnitude
  above the tolerance).

Regenerate fixtures (only legitimate when behaviour is *supposed* to
change, alongside refreshed BENCH artifacts)::

    PYTHONPATH=src python tests/test_golden_replay.py --record
"""

from __future__ import annotations

import json
import os

import pytest

from repro.common.clock import SimClock, SimEvent, SimScheduler
from repro.common.errors import FetchCancelledError
from repro.common.rng import rng_for
from repro.net.link import Link
from repro.obs.export import chrome_trace, dump_json, metrics_snapshot
from repro.obs.metrics import MetricsRegistry

SEEDS = ("11", "42")

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture_path(seed: str) -> str:
    return os.path.join(FIXTURE_DIR, f"golden_replay_{seed}.json")


def canonicalize(obj):
    """Round every float to 12 significant digits, recursively.

    Fixture comparisons must tolerate ULP-level drift (float ops
    reassociated by the incremental link model) without tolerating any
    actual behaviour change; 12 significant digits sits comfortably
    between the two regimes.
    """
    if isinstance(obj, float):
        return float(f"{obj:.12g}")
    if isinstance(obj, dict):
        return {key: canonicalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    return obj


def run_workload(seed: str) -> dict:
    """One seeded mixed workload; returns a canonical-JSON-able summary."""
    clock = SimClock()
    tracer = clock.attach_tracer()
    registry = MetricsRegistry()
    transfers = registry.counter("golden.transfers")
    cancels = registry.counter("golden.cancelled")
    durations = registry.histogram(
        "golden.duration_s", buckets=(0.5, 2.0, 10.0, 60.0)
    )
    shared = Link(clock, bandwidth_mbps=100.0)
    fast = Link(clock, bandwidth_mbps=904.0)
    rng = rng_for("golden-replay", seed)

    plans = []
    for idx in range(6):
        # Client 2 moves 10x the payload so the canceller reliably finds
        # it mid-flight, far from any completion-ordering boundary.
        scale = 10 if idx == 2 else 1
        sizes = [rng.randrange(200_000, 4_000_000) * scale for _ in range(3)]
        thinks = [round(rng.random() * 0.4, 6) for _ in range(3)]
        plans.append((sizes, thinks))
    cancel_at = 2.0 + round(rng.random(), 6)

    with SimScheduler(clock) as scheduler:

        def client(idx, sizes, thinks):
            moved = 0
            with clock.span("client", idx=idx):
                for size, think in zip(sizes, thinks):
                    clock.advance(think, f"think-{idx}")
                    try:
                        duration = shared.transfer(size, label=f"c{idx}")
                    except FetchCancelledError as error:
                        cancels.inc()
                        moved += error.bytes_transferred
                        continue
                    transfers.inc()
                    durations.observe(duration)
                    moved += size
            return moved

        procs = [
            scheduler.spawn(client, idx, sizes, thinks, name=f"client-{idx}")
            for idx, (sizes, thinks) in enumerate(plans)
        ]
        gate = SimEvent(clock)

        def watcher():
            yield 0.25
            yield procs[0]  # generator joining a call process
            gate.fire()
            yield None  # bare reschedule
            yield 0.125
            return "watched"

        def sleeper(steps):
            waited = 0.0
            yield gate  # generator waiting on a SimEvent
            for i in range(steps):
                delay = 0.05 * (i + 1)
                yield delay
                waited += delay
            return round(waited, 9)

        def canceller():
            clock.advance(cancel_at, "cancel-arm")
            victims = shared.cancel_flows(procs[2])
            gate.wait()  # call process waiting on a SimEvent
            return victims

        def bulk():
            total = 0.0
            for i in range(3):
                total += fast.transfer(1_000_000 + i, label=f"bulk-{i}")
                clock.advance(0.01, "bulk-think")
            return round(total, 9)

        procs.append(scheduler.spawn(watcher, name="watcher"))
        # Spawn a generator *object* (not function) to cover that path.
        procs.append(scheduler.spawn(sleeper(3), name="sleeper"))
        procs.append(scheduler.spawn(canceller, name="canceller"))
        procs.append(scheduler.spawn(bulk, name="bulk"))
        scheduler.run()

    return {
        "seed": seed,
        "final_now": clock.now,
        "shared_records": [
            [r.start, r.duration, r.payload_bytes, r.label]
            for r in shared.log.records
        ],
        "fast_records": [
            [r.start, r.duration, r.payload_bytes, r.label]
            for r in fast.log.records
        ],
        "shared_totals": [
            shared.log.total_bytes,
            shared.log.total_time,
            shared.log.total_requests,
        ],
        "busy_seconds": shared.busy_seconds,
        "processes": [
            [p.name, p.started_at, p.finished_at, p.result] for p in procs
        ],
        "trace": chrome_trace(tracer),
        "metrics": metrics_snapshot(registry),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_double_run_byte_identical(seed):
    first = dump_json(run_workload(seed))
    second = dump_json(run_workload(seed))
    assert first == second


@pytest.mark.parametrize("seed", SEEDS)
def test_matches_recorded_fixture(seed):
    with open(_fixture_path(seed)) as handle:
        recorded = json.load(handle)
    assert canonicalize(run_workload(seed)) == recorded


@pytest.mark.parametrize("seed", SEEDS)
def test_workload_exercises_hot_paths(seed):
    """The workload must actually cross the paths it claims to pin."""
    summary = run_workload(seed)
    metrics = summary["metrics"]
    assert metrics["golden.transfers"] > 0
    assert metrics["golden.cancelled"] >= 1  # mid-flight cancellation hit
    labels = [record[3] for record in summary["shared_records"]]
    assert any(label.endswith(":cancelled") or label == "cancelled"
               for label in labels)
    # Contention happened: some shared-link record outlasts its nominal
    # sole-flow cost (duration is the stretched elapsed time).
    nominal = [
        Link(SimClock(), bandwidth_mbps=100.0).transfer_time(record[2])
        for record in summary["shared_records"]
    ]
    assert any(record[1] > cost * 1.5
               for record, cost in zip(summary["shared_records"], nominal))
    names = [row[0] for row in summary["processes"]]
    assert names == [
        "client-0", "client-1", "client-2", "client-3", "client-4",
        "client-5", "watcher", "sleeper", "canceller", "bulk",
    ]


def _record() -> None:
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    for seed in SEEDS:
        path = _fixture_path(seed)
        summary = canonicalize(run_workload(seed))
        with open(path, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.relpath(path)}")


if __name__ == "__main__":
    import sys

    if "--record" in sys.argv:
        _record()
    else:
        print(__doc__)
