"""The HA registry tier: breakers, admission, hedging, selection, stats.

Covers the :mod:`repro.net.ha` machinery in isolation (breaker state
machine, admission gate, hedge-deadline estimator) and through the full
testbed (shedding, hedged fetches, seeded selection, determinism).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.clock import SimScheduler
from repro.common.errors import (
    NotFoundError,
    RegistryOverloadedError,
    UnavailableError,
)
from repro.common.stats import percentile
from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import make_ha_testbed, publish_images
from repro.gear.pool import PoolStats, SharedFilePool
from repro.gear.viewer import FaultStats
from repro.net.faults import (
    BrownoutWindow,
    FaultPlan,
    LinkFaultStats,
    OutageWindow,
)
from repro.net.ha import (
    AdmissionGate,
    BreakerState,
    CircuitBreaker,
    HAStats,
    HedgeEstimator,
    ReplicaStats,
)
from repro.net.transport import RpcStats


class TestCircuitBreaker:
    def test_starts_closed_and_available(self):
        breaker = CircuitBreaker()
        assert breaker.state(0.0) is BreakerState.CLOSED
        assert breaker.available(0.0)
        assert breaker.trips == 0

    def test_trips_after_failure_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=2.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state(0.1) is BreakerState.CLOSED
        breaker.record_failure(0.2)
        assert breaker.state(0.2) is BreakerState.OPEN
        assert not breaker.available(0.3)
        assert breaker.trips == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success(0.1)
        breaker.record_failure(0.2)
        assert breaker.state(0.2) is BreakerState.CLOSED

    def test_half_open_is_derived_from_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=2.0)
        breaker.record_failure(1.0)
        assert breaker.state(2.9) is BreakerState.OPEN
        assert breaker.state(3.0) is BreakerState.HALF_OPEN
        # available() is pure: asking repeatedly changes nothing.
        for _ in range(5):
            assert breaker.available(3.0)
        assert breaker.state(3.0) is BreakerState.HALF_OPEN

    def test_half_open_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=2.0)
        breaker.record_failure(0.0)
        breaker.record_success(2.5)
        assert breaker.state(2.5) is BreakerState.CLOSED
        assert breaker.trips == 1

    def test_half_open_failure_reopens_for_another_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=2.0)
        breaker.record_failure(0.0)
        breaker.record_failure(2.5)  # the half-open trial failed
        assert breaker.state(2.6) is BreakerState.OPEN
        assert breaker.opened_at == 2.5
        assert breaker.trips == 2

    def test_straggler_success_while_hard_open_is_ignored(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=2.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.5)  # launched before the trip landed
        assert breaker.state(0.5) is BreakerState.OPEN

    def test_close_threshold_needs_multiple_half_open_successes(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, close_threshold=2
        )
        breaker.record_failure(0.0)
        breaker.record_success(1.5)
        assert breaker.state(1.5) is BreakerState.HALF_OPEN
        breaker.record_success(1.6)
        assert breaker.state(1.6) is BreakerState.CLOSED

    def test_force_open_trips_immediately(self):
        breaker = CircuitBreaker(failure_threshold=5)
        breaker.force_open(1.0)
        assert breaker.state(1.0) is BreakerState.OPEN
        assert breaker.trips == 1

    def test_force_open_is_noop_while_hard_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=2.0)
        breaker.record_failure(0.0)
        breaker.force_open(1.0)
        assert breaker.opened_at == 0.0
        assert breaker.trips == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0.0)


class TestAdmissionGate:
    def test_unbounded_by_default(self):
        gate = AdmissionGate()
        for _ in range(100):
            assert gate.try_enter()
        assert gate.inflight == 100

    def test_bounded_gate_sheds_then_readmits(self):
        gate = AdmissionGate(2)
        assert gate.try_enter()
        assert gate.try_enter()
        assert not gate.try_enter()
        gate.exit()
        assert gate.try_enter()
        assert gate.peak_inflight == 2

    def test_unmatched_exit_raises(self):
        gate = AdmissionGate(2)
        with pytest.raises(RuntimeError):
            gate.exit()


class TestHedgeEstimator:
    def test_cold_ratio_before_min_samples(self):
        est = HedgeEstimator(cold_ratio=3.0, min_samples=4, multiplier=1.25)
        est.observe(1.0)
        est.observe(1.0)
        est.observe(1.0)
        assert est.slowdown_ratio() == 3.0
        assert est.deadline_s(2.0) == pytest.approx(2.0 * 3.0 * 1.25)

    def test_warm_deadline_agrees_with_percentile_helper(self):
        est = HedgeEstimator(quantile=95.0, multiplier=1.0, min_samples=4)
        ratios = [1.0, 1.2, 2.0, 4.0, 1.1]
        for ratio in ratios:
            est.observe(ratio)
        assert est.slowdown_ratio() == percentile(ratios, 95.0)

    def test_ratio_floor_is_one(self):
        est = HedgeEstimator(min_samples=1, multiplier=1.0)
        est.observe(0.5)  # faster than nominal: never hedge early
        assert est.slowdown_ratio() == 1.0

    def test_window_trims_old_samples(self):
        est = HedgeEstimator(window=4, min_samples=1, multiplier=1.0)
        est.observe(100.0)
        for _ in range(4):
            est.observe(1.0)
        assert est.slowdown_ratio() == 1.0

    def test_nonpositive_ratio_ignored(self):
        est = HedgeEstimator(min_samples=1)
        est.observe(0.0)
        est.observe(-1.0)
        assert est.slowdown_ratio() == est.cold_ratio


#: Every counter dataclass in the tree; each is a MetricSet, whose
#: rebuild-from-defaults reset must zero every field, so a newly added
#: counter can never dodge the reset path.
STATS_CLASSES = (
    RpcStats, LinkFaultStats, FaultStats, HAStats, ReplicaStats, PoolStats,
)


class TestStatsReset:
    @pytest.mark.parametrize(
        "stats_cls", STATS_CLASSES, ids=lambda c: c.__name__
    )
    def test_every_field_resets(self, stats_cls):
        stats = stats_cls()
        for offset, field in enumerate(dataclasses.fields(stats)):
            setattr(stats, field.name, offset + 1)
        stats.reset()
        assert stats == stats_cls(), (
            f"{stats_cls.__name__}.reset() missed a field"
        )

    @pytest.mark.parametrize(
        "stats_cls", STATS_CLASSES, ids=lambda c: c.__name__
    )
    def test_metrics_covers_every_field(self, stats_cls):
        """The registry snapshot view must expose every declared counter."""
        stats = stats_cls()
        declared = {f.name for f in dataclasses.fields(stats)}
        assert set(stats.metrics()) == declared

    def test_pool_reset_stats_covers_every_counter(self):
        """Every PoolStats counter must zero through pool.reset_stats().

        Enumerated from the dataclass fields so a counter added to the
        pool later cannot be silently left out of the reset path; the
        legacy pool attributes must mirror the stats group both ways.
        """
        pool = SharedFilePool()
        counters = [f.name for f in dataclasses.fields(PoolStats)]
        assert counters, "pool exposes no counters?"
        for offset, name in enumerate(counters):
            setattr(pool, name, offset + 1)
            assert getattr(pool.stats, name) == offset + 1
        pool.reset_stats()
        leftovers = {n: getattr(pool, n) for n in counters if getattr(pool, n)}
        assert not leftovers, f"pool.reset_stats() missed {leftovers}"

    def test_transport_reset_stats_resets_every_endpoint(self, testbed):
        endpoint = testbed.transport.endpoint("gear-registry")
        endpoint.stats.calls = 5
        endpoint.stats.errors = 2
        testbed.transport.reset_stats()
        assert endpoint.stats == RpcStats()


def _published_ha(tmp_images, **kwargs):
    testbed = make_ha_testbed(**kwargs)
    publish_images(testbed, tmp_images, convert=True)
    return testbed


class TestSelection:
    def test_primary_first_prefers_low_index(self, small_corpus):
        testbed = _published_ha(small_corpus.images[:1], replicas=3)
        order = testbed.ha.policy.select()
        assert [r.index for r in order] == [0, 1, 2]

    def test_open_breaker_filters_replica(self, small_corpus):
        testbed = _published_ha(small_corpus.images[:1], replicas=3)
        policy = testbed.ha.policy
        replicas = testbed.ha.replica_set.replicas
        replicas[0].breaker.force_open(testbed.clock.now)
        order = policy.select()
        assert [r.index for r in order] == [1, 2]
        assert policy.stats.breaker_skips == 1

    def test_p2c_is_seed_deterministic(self, small_corpus):
        def draw(seed):
            testbed = _published_ha(
                small_corpus.images[:1], replicas=4,
                strategy="p2c", seed=seed,
            )
            return [
                tuple(r.index for r in testbed.ha.policy.select())
                for _ in range(8)
            ]

        assert draw("a") == draw("a")
        assert draw("a") != draw("b")

    def test_least_loaded_orders_by_inflight(self, small_corpus):
        testbed = _published_ha(
            small_corpus.images[:1], replicas=3, strategy="least-loaded"
        )
        replicas = testbed.ha.replica_set.replicas
        replicas[0].admission.try_enter()
        replicas[0].admission.try_enter()
        replicas[1].admission.try_enter()
        order = testbed.ha.policy.select()
        assert [r.index for r in order] == [2, 1, 0]


class TestShedding:
    def test_saturated_gates_shed_with_typed_error(self, small_corpus):
        testbed = _published_ha(
            small_corpus.images[:1], replicas=2, admission_capacity=1
        )
        policy = testbed.ha.policy
        for replica in testbed.ha.replica_set.replicas:
            assert replica.admission.try_enter()  # fill the only slot
        with pytest.raises(RegistryOverloadedError):
            policy.call("query", "anything")
        # Every replica shed in every round; backoffs were charged
        # between rounds and the give-up is accounted.
        assert policy.stats.sheds_seen >= 2
        assert policy.stats.backoffs > 0
        assert policy.stats.giveups == 1
        for replica in testbed.ha.replica_set.replicas:
            assert replica.stats.sheds > 0

    def test_shed_is_retryable_and_fails_over(self, small_corpus):
        testbed = _published_ha(small_corpus.images[:1], replicas=2)
        replicas = testbed.ha.replica_set.replicas
        # Fill replica 0's queue; replica 1 stays open.
        replicas[0].admission = AdmissionGate(1)
        assert replicas[0].admission.try_enter()
        identity = next(iter(replicas[1].registry.identities()))
        assert policy_call_download(testbed, identity) is not None
        assert replicas[0].stats.sheds == 1
        assert replicas[1].stats.serves >= 1
        assert testbed.ha.policy.stats.failovers == 1
        # Shedding is congestion, not sickness: the breaker stays closed.
        assert replicas[0].breaker.state(testbed.clock.now) is BreakerState.CLOSED

    def test_overload_error_is_unavailable_subclass(self):
        # The viewer's degraded-mode catch and the retry policy both key
        # on UnavailableError; a shed must stay inside that contract.
        assert issubclass(RegistryOverloadedError, UnavailableError)


def policy_call_download(testbed, identity):
    return testbed.ha.policy.call(
        "download", identity, label=f"test-fetch:{identity[:8]}"
    )


class TestFailover:
    def test_read_fails_over_when_primary_is_down(self, small_corpus):
        down = FaultPlan(
            outages=(OutageWindow(start_s=0.0, duration_s=1e9),),
            seed="t-down",
        )
        testbed = _published_ha(
            small_corpus.images[:1], replicas=3,
            replica_fault_plans=[down],
        )
        testbed.arm_faults()
        replicas = testbed.ha.replica_set.replicas
        identity = next(iter(replicas[1].registry.identities()))
        assert policy_call_download(testbed, identity) is not None
        assert replicas[0].stats.failures == 1
        assert replicas[1].stats.serves >= 1
        assert testbed.ha.policy.stats.failovers == 1

    def test_repeated_failures_trip_breaker_and_skip(self, small_corpus):
        down = FaultPlan(
            outages=(OutageWindow(start_s=0.0, duration_s=1e9),),
            seed="t-down",
        )
        testbed = _published_ha(
            small_corpus.images[:1], replicas=3,
            replica_fault_plans=[down],
        )
        testbed.arm_faults()
        replicas = testbed.ha.replica_set.replicas
        identity = next(iter(replicas[1].registry.identities()))
        for _ in range(4):
            policy_call_download(testbed, identity)
        assert replicas[0].breaker.trips == 1
        assert not replicas[0].breaker.available(testbed.clock.now)
        assert testbed.ha.policy.stats.breaker_skips > 0

    def test_missing_identity_raises_not_found_without_backoff(
        self, small_corpus
    ):
        testbed = _published_ha(small_corpus.images[:1], replicas=3)
        policy = testbed.ha.policy
        with pytest.raises(NotFoundError):
            policy.call("download", "no-such-identity")
        # A 404 no replica contradicted is authoritative: no retry rounds.
        assert policy.stats.backoffs == 0
        assert policy.stats.giveups == 0


class TestHedging:
    def _hedged_fetch(self, *, slow_factor=40.0):
        slow = FaultPlan(
            brownouts=(
                BrownoutWindow(start_s=0.0, duration_s=1e9, factor=slow_factor),
            ),
            seed="t-slow",
        )
        testbed = make_ha_testbed(replicas=2, replica_fault_plans=[slow])
        return testbed, slow

    def test_hedge_fires_against_slow_primary_and_mate_wins(self, small_corpus):
        testbed, _ = self._hedged_fetch()
        publish_images(testbed, small_corpus.images[:1], convert=True)
        testbed.arm_faults()
        replicas = testbed.ha.replica_set.replicas
        identity = next(iter(replicas[1].registry.identities()))
        results = []
        with SimScheduler(testbed.clock) as scheduler:
            scheduler.spawn(
                lambda: results.append(policy_call_download(testbed, identity)),
                name="client",
            )
            scheduler.run()
        stats = testbed.ha.policy.stats
        assert results and results[0] is not None
        assert stats.hedges == 1
        assert stats.hedge_wins == 1
        # The slow loser was cancelled mid-flight and charged only the
        # bytes its flow actually moved.
        assert stats.cancels == 1
        assert stats.wasted_hedge_bytes >= 0
        assert replicas[1].stats.serves == 1

    def test_no_hedging_in_sequential_mode(self, small_corpus):
        testbed, _ = self._hedged_fetch()
        publish_images(testbed, small_corpus.images[:1], convert=True)
        testbed.arm_faults()
        replicas = testbed.ha.replica_set.replicas
        identity = next(iter(replicas[1].registry.identities()))
        assert policy_call_download(testbed, identity) is not None
        assert testbed.ha.policy.stats.hedges == 0

    def test_hedging_disabled_by_flag(self, small_corpus):
        slow = FaultPlan(
            brownouts=(
                BrownoutWindow(start_s=0.0, duration_s=1e9, factor=40.0),
            ),
            seed="t-slow",
        )
        testbed = make_ha_testbed(
            replicas=2, replica_fault_plans=[slow], hedging=False
        )
        publish_images(testbed, small_corpus.images[:1], convert=True)
        testbed.arm_faults()
        replicas = testbed.ha.replica_set.replicas
        identity = next(iter(replicas[1].registry.identities()))
        with SimScheduler(testbed.clock) as scheduler:
            scheduler.spawn(
                lambda: policy_call_download(testbed, identity), name="client"
            )
            scheduler.run()
        assert testbed.ha.policy.stats.hedges == 0


class TestDeterminism:
    def test_faulty_ha_deploy_replays_identically(self, small_corpus):
        """Double-run a whole faulty HA deployment and diff everything.

        The jitter RNG, the selection RNG, the fault streams, and the
        scheduler interleaving all come from seeded streams, so two
        identical runs must agree on stats, time, and bytes exactly.
        """
        generated = small_corpus.images[0]

        def run():
            down = FaultPlan(
                outages=(OutageWindow(start_s=0.0, duration_s=1e9),),
                seed="t-det",
            )
            testbed = make_ha_testbed(
                replicas=3, replica_fault_plans=[down], seed="t-det"
            )
            publish_images(testbed, [generated], convert=True)
            testbed.arm_faults()
            results = []
            with SimScheduler(testbed.clock) as scheduler:
                testbed.ha.monitor.start(scheduler)
                proc = scheduler.spawn(
                    lambda: results.append(
                        deploy_with_gear(testbed, generated)
                    ),
                    name="client",
                )
                scheduler.run_until(proc)
                testbed.ha.monitor.stop()
                scheduler.run()
            result = results[0]
            return {
                "stats": testbed.ha.policy.stats.as_dict(),
                "clock": testbed.clock.now,
                "bytes": testbed.link.log.total_bytes,
                "total_s": result.total_s,
                "degraded": result.degraded,
                "replica_serves": [
                    r.stats.serves for r in testbed.ha.replica_set.replicas
                ],
            }

        first = run()
        second = run()
        assert first == second
        assert not first["degraded"]
