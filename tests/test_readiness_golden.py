"""Readiness instrumentation is behavior-neutral (golden invariants).

Two guarantees ride this suite:

* *Neutrality* — attaching the timeline sampler must not move a single
  virtual timestamp of the observed work: per-client deploy latencies,
  readiness instants, byte counts, and the wave makespan are identical
  with the sampler attached and detached, and a detached run is
  byte-identical run to run (the detached code path spawns no process,
  so it *is* the pre-instrumentation code path).
* *Ordering* — ``time_to_ready`` is a real milestone inside the deploy:
  ``0 < ready_s <= total_s`` for every system across the Fig. 9-style
  series × bandwidth grid, and under Gear the gap is the write/compute
  tail the paper's startup task performs after its read set.
"""

import pytest

from repro.bench.deploy import (
    deploy_with_docker,
    deploy_with_gear,
    deploy_with_gear_overlapped,
)
from repro.bench.environment import (
    make_testbed,
    make_timeline_sampler,
    publish_images,
)
from repro.gear.prefetch import TraceRecorder
from repro.net.topology import Cluster


def _fleet_wave(small_corpus, *, attach):
    generated = small_corpus.get("nginx:v1")
    cluster = Cluster(4, bandwidth_mbps=120)
    publish_images(cluster.registry_testbed, [generated], convert=True)
    sampler = None
    if attach:
        sampler = make_timeline_sampler(
            cluster.registry_testbed, seed="golden"
        )
    wave = cluster.deploy_wave(
        lambda node: deploy_with_gear(node.testbed, generated,
                                      clear_cache=True),
        sampler=sampler,
    )
    return wave, sampler


class TestSamplerNeutrality:
    def test_attached_run_matches_detached_run(self, small_corpus):
        detached, _ = _fleet_wave(small_corpus, attach=False)
        attached, sampler = _fleet_wave(small_corpus, attach=True)
        assert attached.latencies_s == detached.latencies_s
        assert attached.ready_s == detached.ready_s
        assert attached.egress_bytes == detached.egress_bytes
        assert attached.makespan_s == detached.makespan_s
        # The attached run actually observed something.
        assert sampler.stats.samples > 0
        assert len(sampler.series_for("ready_s")) == 4

    def test_detached_run_is_replay_identical(self, small_corpus):
        first, _ = _fleet_wave(small_corpus, attach=False)
        second, _ = _fleet_wave(small_corpus, attach=False)
        assert first.as_dict() == second.as_dict()

    def test_single_deploy_unmoved_by_instrumentation(self, small_corpus):
        # The readiness instant inside the task is free when no tracer
        # is attached: two seeded single-node deploys agree to the bit.
        results = []
        for _ in range(2):
            bed = make_testbed(bandwidth_mbps=120)
            publish_images(bed, small_corpus.images, convert=True)
            results.append(
                deploy_with_gear(bed.fresh_client(),
                                 small_corpus.get("tomcat:v1"),
                                 clear_cache=True)
            )
        first, second = results
        assert first.total_s == second.total_s
        assert first.ready_s == second.ready_s


class TestReadyOrdering:
    @pytest.mark.parametrize("bandwidth", (904, 100, 20))
    @pytest.mark.parametrize("reference", ("nginx:v1", "tomcat:v1"))
    def test_ready_within_deploy_across_grid(
        self, small_corpus, bandwidth, reference
    ):
        # Fig. 9's grid shape: series × bandwidth, both systems.
        bed = make_testbed(bandwidth_mbps=bandwidth)
        publish_images(bed, small_corpus.images, convert=True)
        generated = small_corpus.get(reference)
        docker = deploy_with_docker(bed.fresh_client(), generated)
        gear = deploy_with_gear(bed.fresh_client(), generated,
                                clear_cache=True)
        for result in (docker, gear):
            assert 0.0 < result.ready_s <= result.total_s
        # Docker is ready only after the full pull completed.
        assert docker.ready_s > docker.pull_s

    def test_overlapped_ready_beats_docker_pull(self, small_corpus):
        # The acceptance shape: with prefetch overlapping the startup
        # task on a slow wire, the service is ready strictly before a
        # docker-style full pull would complete.
        bed = make_testbed(bandwidth_mbps=20)
        publish_images(bed, small_corpus.images, convert=True)
        generated = small_corpus.get("nginx:v1")
        warm = bed.fresh_client()
        deploy_with_gear(warm, generated)
        recorder = TraceRecorder()
        recorder.record(
            "nginx.gear:v1", warm.gear_driver.containers()[-1].mount
        )
        docker = deploy_with_docker(bed.fresh_client(), generated)
        overlapped = deploy_with_gear_overlapped(
            bed.fresh_client(), generated, recorder, clear_cache=True
        )
        assert 0.0 < overlapped.ready_s <= overlapped.total_s
        assert overlapped.ready_s < docker.pull_s

    def test_wave_ready_tuple_tracks_node_order(self, small_corpus):
        wave, _ = _fleet_wave(small_corpus, attach=False)
        assert len(wave.ready_s) == len(wave.latencies_s)
        for ready, latency in zip(wave.ready_s, wave.latencies_s):
            assert 0.0 < ready <= latency
        assert wave.ready_p50_s <= wave.ready_p99_s <= wave.ready_p999_s
        assert wave.ready_p99_s <= wave.p99_s
