"""Link and RPC transport cost accounting."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import TransportError
from repro.net.link import Link, lan_link
from repro.net.transport import RpcEndpoint, RpcTransport


class TestLink:
    def test_transfer_time_formula(self):
        clock = SimClock()
        link = Link(clock, bandwidth_mbps=8, rtt_s=0.001, request_overhead_s=0.002)
        # 8 Mbps = 1e6 bytes/s; 1e6 bytes -> 1 s payload + 3 ms fixed.
        assert link.transfer_time(1_000_000) == pytest.approx(1.003)

    def test_transfer_advances_clock_and_logs(self):
        clock = SimClock()
        link = Link(clock, bandwidth_mbps=8)
        duration = link.transfer(500_000, label="x")
        assert clock.now == pytest.approx(duration)
        assert link.log.total_bytes == 500_000
        assert link.log.total_requests == 1

    def test_zero_payload_request(self):
        clock = SimClock()
        link = Link(clock)
        link.request()
        assert clock.now > 0
        assert link.log.total_bytes == 0

    def test_rejects_bad_parameters(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            Link(clock, bandwidth_mbps=0)
        with pytest.raises(ValueError):
            Link(clock, rtt_s=-1)
        with pytest.raises(ValueError):
            Link(clock).transfer(-1)

    def test_lower_bandwidth_is_slower(self):
        clock = SimClock()
        fast = Link(clock, bandwidth_mbps=904)
        slow = fast.with_bandwidth(5)
        assert slow.transfer_time(10_000_000) > fast.transfer_time(10_000_000)
        assert slow.clock is clock

    def test_lan_link_default(self):
        link = lan_link(SimClock())
        assert link.bandwidth_mbps == 904

    def test_log_clear(self):
        clock = SimClock()
        link = Link(clock)
        link.transfer(100)
        link.log.clear()
        assert link.log.total_requests == 0
        assert link.log.total_bytes == 0
        assert link.log.total_time == 0.0

    def test_transfer_gen_matches_transfer(self):
        """Generator and call transfers replay the same schedule.

        Two identical contended scenarios — one with thread processes
        calling ``transfer``, one with generator processes delegating to
        ``transfer_gen`` — must land on the same virtual time and move
        the same bytes.
        """
        from repro.common.clock import SimScheduler

        def run(mode):
            clock = SimClock()
            link = Link(clock, bandwidth_mbps=8)
            sizes = (500_000, 250_000, 750_000)

            def client_call(size):
                clock.advance(0.01)
                link.transfer(size)

            def client_gen(size):
                yield 0.01
                yield from link.transfer_gen(size)

            target = client_gen if mode == "gen" else client_call
            with SimScheduler(clock) as scheduler:
                for size in sizes:
                    scheduler.spawn(target, size)
                scheduler.run()
            return clock.now, link.log.total_bytes, link.log.total_requests

        assert run("thread") == run("gen")


class TestTransferLog:
    def test_totals_are_running_counters(self):
        # The totals are maintained on append (no per-query re-summing);
        # they must still agree with a full walk of the records.
        clock = SimClock()
        link = Link(clock, bandwidth_mbps=8)
        for payload in (100, 2_000, 30_000):
            link.transfer(payload)
        log = link.log
        assert log.total_bytes == sum(r.payload_bytes for r in log.records)
        assert log.total_time == sum(r.duration for r in log.records)
        assert log.total_requests == len(log.records)

    def test_preseeded_records_counted(self):
        from repro.net.link import TransferLog, TransferRecord

        log = TransferLog(
            records=[
                TransferRecord(start=0.0, duration=1.5, payload_bytes=10, label="a"),
                TransferRecord(start=1.5, duration=0.5, payload_bytes=20, label="b"),
            ]
        )
        assert log.total_bytes == 30
        assert log.total_time == 2.0
        assert log.total_requests == 2


class TestTransport:
    def make(self):
        clock = SimClock()
        link = Link(clock, bandwidth_mbps=8)
        transport = RpcTransport(link)
        endpoint = RpcEndpoint("svc")
        endpoint.register("echo", lambda value: (value, 1000))
        endpoint.register("free", lambda: (None, 0))
        transport.bind(endpoint)
        return clock, link, transport, endpoint

    def test_call_returns_handler_result(self):
        _, _, transport, _ = self.make()
        assert transport.call("svc", "echo", 42) == 42

    def test_call_charges_request_and_response(self):
        clock, link, transport, _ = self.make()
        transport.call("svc", "echo", 1)
        # Request frame (256 B) + response (1000 B), two transfers.
        assert link.log.total_requests == 2
        assert link.log.total_bytes == 256 + 1000

    def test_zero_byte_response_skips_transfer(self):
        _, link, transport, _ = self.make()
        transport.call("svc", "free")
        assert link.log.total_requests == 1

    def test_upload_payload_charged_on_request(self):
        _, link, transport, _ = self.make()
        transport.call("svc", "free", request_payload_bytes=5000)
        assert link.log.total_bytes == 256 + 5000

    def test_stats_accumulate(self):
        _, _, transport, endpoint = self.make()
        transport.call("svc", "echo", 1)
        transport.call("svc", "echo", 2)
        assert endpoint.stats.calls == 2
        assert endpoint.stats.response_bytes == 2000

    def test_has_endpoint(self):
        _, _, transport, _ = self.make()
        assert transport.has_endpoint("svc")
        assert not transport.has_endpoint("nope")

    def test_unknown_endpoint_and_method(self):
        _, _, transport, endpoint = self.make()
        with pytest.raises(TransportError):
            transport.call("nope", "echo", 1)
        with pytest.raises(TransportError):
            transport.call("svc", "nope")

    def test_duplicate_binding_rejected(self):
        _, _, transport, _ = self.make()
        with pytest.raises(TransportError):
            transport.bind(RpcEndpoint("svc"))

    def test_duplicate_method_rejected(self):
        endpoint = RpcEndpoint("e")
        endpoint.register("m", lambda: (None, 0))
        with pytest.raises(TransportError):
            endpoint.register("m", lambda: (None, 0))

    def test_methods_listing(self):
        _, _, _, endpoint = self.make()
        assert endpoint.methods() == ("echo", "free")
