"""The write-ahead intent journal: appends, replay, compaction."""

from repro.common.clock import SimClock
from repro.gear.journal import (
    FETCH_BEGIN,
    LINK_BEGIN,
    IntentJournal,
)


class TestAppends:
    def test_records_carry_sequence_and_time(self):
        clock = SimClock()
        journal = IntentJournal(clock)
        journal.fetch_begin("id-a")
        clock.advance(1.5, "work")
        journal.fetch_commit("id-a")
        first, second = journal.records
        assert (first.seq, first.op, first.at_s) == (0, FETCH_BEGIN, 0.0)
        assert second.seq == 1 and second.at_s == 1.5

    def test_appends_cost_no_virtual_time(self):
        # The journaled admission path must stay byte-identical in time
        # to the unjournaled one; records ride the data write stream.
        clock = SimClock()
        journal = IntentJournal(clock)
        journal.fetch_begin("id-a")
        journal.fetch_commit("id-a")
        journal.link_begin("id-a", "/bin/a", "img.gear:v1")
        journal.link_commit("id-a", "/bin/a", "img.gear:v1")
        assert clock.now == 0.0

    def test_clockless_journal_stamps_zero(self):
        journal = IntentJournal()
        record = journal.fetch_begin("id-a")
        assert record.at_s == 0.0

    def test_link_records_carry_path_and_reference(self):
        journal = IntentJournal()
        record = journal.link_begin("id-a", "/bin/a", "img.gear:v1")
        assert record.op == LINK_BEGIN
        assert record.path == "/bin/a"
        assert record.reference == "img.gear:v1"


class TestReplay:
    def test_uncommitted_fetch_is_open(self):
        journal = IntentJournal()
        journal.fetch_begin("id-a")
        state = journal.replay()
        assert state.open_fetches == ["id-a"]
        assert "id-a" not in state.committed_fetches

    def test_committed_fetch_is_closed(self):
        journal = IntentJournal()
        journal.fetch_begin("id-a")
        journal.fetch_commit("id-a")
        state = journal.replay()
        assert state.open_fetches == []
        assert state.committed_fetches == {"id-a"}

    def test_link_commit_closes_the_matching_intent(self):
        journal = IntentJournal()
        journal.link_begin("id-a", "/bin/a", "img.gear:v1")
        journal.link_begin("id-b", "/bin/b", "img.gear:v1")
        journal.link_commit("id-a", "/bin/a", "img.gear:v1")
        state = journal.replay()
        assert [record.identity for record in state.open_links] == ["id-b"]

    def test_same_path_in_two_indexes_is_two_intents(self):
        journal = IntentJournal()
        journal.link_begin("id-a", "/bin/a", "one.gear:v1")
        journal.link_begin("id-a", "/bin/a", "two.gear:v1")
        journal.link_commit("id-a", "/bin/a", "one.gear:v1")
        state = journal.replay()
        assert len(state.open_links) == 1
        assert state.open_links[0].reference == "two.gear:v1"

    def test_open_links_come_back_in_begin_order(self):
        journal = IntentJournal()
        for index in range(5):
            journal.link_begin(f"id-{index}", f"/f{index}", "img.gear:v1")
        state = journal.replay()
        assert [r.seq for r in state.open_links] == sorted(
            r.seq for r in state.open_links
        )

    def test_refetch_after_commit_reopens(self):
        # A committed identity can be fetched again later (e.g. after an
        # eviction); a crash mid-refetch must classify it as open again.
        journal = IntentJournal()
        journal.fetch_begin("id-a")
        journal.fetch_commit("id-a")
        journal.fetch_begin("id-a")
        state = journal.replay()
        assert state.open_fetches == ["id-a"]
        # ...but its earlier commit is still on record.
        assert "id-a" in state.committed_fetches


class TestCompaction:
    def test_compact_drops_everything_and_counts(self):
        journal = IntentJournal()
        journal.fetch_begin("id-a")
        journal.fetch_commit("id-a")
        assert journal.compact() == 2
        assert len(journal) == 0
        assert journal.compactions == 1
        assert journal.appended == 2  # history survives

    def test_sequence_survives_compaction(self):
        journal = IntentJournal()
        journal.fetch_begin("id-a")
        journal.compact()
        record = journal.fetch_begin("id-b")
        assert record.seq == 1
