"""The level-1 shared cache: content addressing, pinning, FIFO/LRU."""

import pytest

from repro.blob import Blob
from repro.common.clock import SimClock, SimEvent
from repro.common.errors import IntegrityError, StorageError
from repro.gear.gearfile import GearFile
from repro.gear.pool import EvictionPolicy, SharedFilePool


def gf(tag: str, size: int = 1000):
    return GearFile.from_blob(Blob.synthetic(tag, size))


class TestBasics:
    def test_insert_and_get(self):
        pool = SharedFilePool()
        inode = pool.insert(gf("a"))
        assert pool.get(gf("a").identity) is inode
        assert pool.hits == 1

    def test_miss_counts(self):
        pool = SharedFilePool()
        assert pool.get("missing") is None
        assert pool.misses == 1

    def test_content_addressing_never_duplicates(self):
        pool = SharedFilePool()
        first = pool.insert(gf("a"))
        second = pool.insert(gf("a"))
        assert first is second
        assert pool.file_count == 1

    def test_used_bytes(self):
        pool = SharedFilePool()
        pool.insert(gf("a", 500))
        pool.insert(gf("b", 300))
        assert pool.used_bytes == 800

    def test_contains_has_no_stat_side_effects(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        assert pool.contains(gf("a").identity)
        assert not pool.contains("zzz")
        assert pool.hits == 0 and pool.misses == 0

    def test_clear(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.clear()
        assert pool.file_count == 0
        assert pool.used_bytes == 0

    def test_hit_ratio(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.get(gf("a").identity)
        pool.get("missing")
        assert pool.hit_ratio == pytest.approx(0.5)


class TestEviction:
    def test_fifo_evicts_oldest_unpinned(self):
        pool = SharedFilePool(capacity_bytes=2500, policy=EvictionPolicy.FIFO)
        pool.insert(gf("a", 1000))
        pool.insert(gf("b", 1000))
        pool.get(gf("a", 1000).identity)  # FIFO ignores recency
        pool.insert(gf("c", 1000))
        assert not pool.contains(gf("a").identity)
        assert pool.contains(gf("b").identity)
        assert pool.evictions == 1

    def test_lru_prefers_recent(self):
        pool = SharedFilePool(capacity_bytes=2500, policy=EvictionPolicy.LRU)
        pool.insert(gf("a", 1000))
        pool.insert(gf("b", 1000))
        pool.get(gf("a", 1000).identity)  # refresh a
        pool.insert(gf("c", 1000))
        assert pool.contains(gf("a").identity)
        assert not pool.contains(gf("b").identity)

    def test_pinned_files_survive(self):
        # "Files that are not linked to Gear indexes are candidates for
        # replacement" — linked inodes (nlink > 1) are pinned.
        pool = SharedFilePool(capacity_bytes=2500)
        pinned = pool.insert(gf("a", 1000))
        pinned.nlink += 1  # a Gear index links it
        pool.insert(gf("b", 1000))
        pool.insert(gf("c", 1000))
        assert pool.contains(gf("a").identity)
        assert not pool.contains(gf("b").identity)

    def test_all_pinned_exceeds_capacity_gracefully(self):
        pool = SharedFilePool(capacity_bytes=2000)
        for tag in ("a", "b"):
            inode = pool.insert(gf(tag, 1000))
            inode.nlink += 1
        pool.insert(gf("c", 1000))
        assert pool.used_bytes == 3000
        assert pool.eviction_failures == 1

    def test_oversized_file_accepted_with_overflow(self):
        # A file larger than the whole cache must still be served (a
        # container read depends on it); the pool evicts what it can and
        # records the pressure failure.
        pool = SharedFilePool(capacity_bytes=100)
        pool.insert(gf("small", 50))
        inode = pool.insert(gf("huge", 1000))
        assert inode.size == 1000
        assert pool.used_bytes == 1000  # small was evicted, huge overflows
        assert pool.eviction_failures == 1

    def test_unbounded_pool_never_evicts(self):
        pool = SharedFilePool()
        for index in range(50):
            pool.insert(gf(f"f{index}", 10_000))
        assert pool.evictions == 0
        assert pool.file_count == 50

    def test_drop_is_administrative(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.drop(gf("a").identity)
        assert not pool.contains(gf("a").identity)
        assert pool.evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            SharedFilePool(capacity_bytes=-1)

    def test_reset_stats(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.get(gf("a").identity)
        pool.reset_stats()
        assert pool.hits == 0

    def test_reset_stats_covers_every_counter(self):
        # Regression: quarantines and eviction_failures were once left
        # behind by reset_stats, leaking counts across experiment phases.
        pool = SharedFilePool(capacity_bytes=1000)
        pinned = pool.insert(gf("a", 1000))
        pinned.nlink += 1
        pool.insert(gf("b", 1000))  # nothing evictable -> failure
        pool.quarantine(gf("c").identity)
        assert pool.eviction_failures == 1 and pool.quarantines == 1
        pool.reset_stats()
        assert pool.hits == 0 and pool.misses == 0
        assert pool.evictions == 0 and pool.eviction_failures == 0
        assert pool.quarantines == 0

    def test_fifo_vs_lru_diverge_on_same_access_sequence(self):
        # Identical inserts and touches; the policies must pick different
        # victims: FIFO evicts the oldest insert regardless of the touch,
        # LRU spares the touched entry and evicts the cold one.
        victims = {}
        for policy in (EvictionPolicy.FIFO, EvictionPolicy.LRU):
            pool = SharedFilePool(capacity_bytes=2000, policy=policy)
            pool.insert(gf("old", 1000))
            pool.insert(gf("cold", 1000))
            pool.get(gf("old").identity)
            pool.insert(gf("new", 1000))
            survivors = {
                tag for tag in ("old", "cold")
                if pool.contains(gf(tag).identity)
            }
            victims[policy] = {"old", "cold"} - survivors
        assert victims[EvictionPolicy.FIFO] == {"old"}
        assert victims[EvictionPolicy.LRU] == {"cold"}


class TestQuarantineLifecycle:
    def test_quarantine_then_verified_insert_lifts_it(self):
        pool = SharedFilePool()
        identity = gf("a").identity
        pool.quarantine(identity)
        assert pool.is_quarantined(identity)
        assert not pool.contains(identity)
        pool.insert(gf("a"))
        assert not pool.is_quarantined(identity)
        assert pool.contains(identity)
        assert pool.quarantines == 1  # history, not state

    def test_quarantine_purges_cached_copy(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.quarantine(gf("a").identity)
        assert not pool.contains(gf("a").identity)
        assert pool.used_bytes == 0


class TestTwoPhaseAdmission:
    def test_staged_entries_are_invisible(self):
        pool = SharedFilePool()
        pool.prepare(gf("a"))
        assert pool.staged_count == 1
        assert pool.get(gf("a").identity) is None
        assert not pool.contains(gf("a").identity)
        assert pool.used_bytes == 0 and pool.file_count == 0

    def test_commit_publishes(self):
        pool = SharedFilePool()
        incoming = gf("a", 700)
        staged = pool.prepare(incoming)
        committed = pool.commit(incoming.identity)
        assert committed is staged
        assert pool.staged_count == 0
        assert pool.used_bytes == 700
        assert pool.get(incoming.identity) is committed

    def test_commit_without_prepare_raises(self):
        pool = SharedFilePool()
        with pytest.raises(StorageError):
            pool.commit("never-prepared")

    def test_abort_discards_staged(self):
        pool = SharedFilePool()
        pool.prepare(gf("a"))
        pool.abort(gf("a").identity)
        assert pool.staged_count == 0
        with pytest.raises(StorageError):
            pool.commit(gf("a").identity)

    def test_prepare_verifies_content(self):
        bad = GearFile(identity="0" * 32, blob=Blob.synthetic("junk", 100))
        pool = SharedFilePool()
        with pytest.raises(IntegrityError):
            pool.prepare(bad)
        assert pool.prepare(bad, verified=False) is not None
        assert pool.is_staged("0" * 32)

    def test_staged_bytes_do_not_trigger_eviction(self):
        # Capacity pressure is paid at commit, not at prepare — a crash
        # before commit must leave the published cache untouched.
        pool = SharedFilePool(capacity_bytes=1000)
        pool.insert(gf("resident", 1000))
        pool.prepare(gf("incoming", 1000))
        assert pool.contains(gf("resident").identity)
        assert pool.evictions == 0
        pool.commit(gf("incoming").identity)
        assert not pool.contains(gf("resident").identity)
        assert pool.evictions == 1

    def test_insert_is_prepare_plus_commit(self):
        pool = SharedFilePool()
        inode = pool.insert(gf("a"))
        assert pool.staged_count == 0
        assert pool.get(gf("a").identity) is inode


class TestClearCompleteness:
    def test_clear_resets_staged_quarantine_and_inflight(self):
        # Regression: clear() once dropped only committed files, leaving
        # stale quarantine marks and dead single-flight events behind.
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.prepare(gf("b"))
        pool.quarantine(gf("c").identity)
        event = SimEvent(SimClock())
        pool.inflight[gf("d").identity] = event
        pool.clear()
        assert pool.file_count == 0 and pool.used_bytes == 0
        assert pool.staged_count == 0
        assert not pool.is_quarantined(gf("c").identity)
        assert not pool.inflight
        # The pending fetch event was fired, not stranded: a waiter
        # re-checks the (now empty) cache instead of blocking forever.
        assert event.fired
