"""The level-1 shared cache: content addressing, pinning, FIFO/LRU."""

import pytest

from repro.blob import Blob
from repro.common.errors import StorageError
from repro.gear.gearfile import GearFile
from repro.gear.pool import EvictionPolicy, SharedFilePool


def gf(tag: str, size: int = 1000):
    return GearFile.from_blob(Blob.synthetic(tag, size))


class TestBasics:
    def test_insert_and_get(self):
        pool = SharedFilePool()
        inode = pool.insert(gf("a"))
        assert pool.get(gf("a").identity) is inode
        assert pool.hits == 1

    def test_miss_counts(self):
        pool = SharedFilePool()
        assert pool.get("missing") is None
        assert pool.misses == 1

    def test_content_addressing_never_duplicates(self):
        pool = SharedFilePool()
        first = pool.insert(gf("a"))
        second = pool.insert(gf("a"))
        assert first is second
        assert pool.file_count == 1

    def test_used_bytes(self):
        pool = SharedFilePool()
        pool.insert(gf("a", 500))
        pool.insert(gf("b", 300))
        assert pool.used_bytes == 800

    def test_contains_has_no_stat_side_effects(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        assert pool.contains(gf("a").identity)
        assert not pool.contains("zzz")
        assert pool.hits == 0 and pool.misses == 0

    def test_clear(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.clear()
        assert pool.file_count == 0
        assert pool.used_bytes == 0

    def test_hit_ratio(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.get(gf("a").identity)
        pool.get("missing")
        assert pool.hit_ratio == pytest.approx(0.5)


class TestEviction:
    def test_fifo_evicts_oldest_unpinned(self):
        pool = SharedFilePool(capacity_bytes=2500, policy=EvictionPolicy.FIFO)
        pool.insert(gf("a", 1000))
        pool.insert(gf("b", 1000))
        pool.get(gf("a", 1000).identity)  # FIFO ignores recency
        pool.insert(gf("c", 1000))
        assert not pool.contains(gf("a").identity)
        assert pool.contains(gf("b").identity)
        assert pool.evictions == 1

    def test_lru_prefers_recent(self):
        pool = SharedFilePool(capacity_bytes=2500, policy=EvictionPolicy.LRU)
        pool.insert(gf("a", 1000))
        pool.insert(gf("b", 1000))
        pool.get(gf("a", 1000).identity)  # refresh a
        pool.insert(gf("c", 1000))
        assert pool.contains(gf("a").identity)
        assert not pool.contains(gf("b").identity)

    def test_pinned_files_survive(self):
        # "Files that are not linked to Gear indexes are candidates for
        # replacement" — linked inodes (nlink > 1) are pinned.
        pool = SharedFilePool(capacity_bytes=2500)
        pinned = pool.insert(gf("a", 1000))
        pinned.nlink += 1  # a Gear index links it
        pool.insert(gf("b", 1000))
        pool.insert(gf("c", 1000))
        assert pool.contains(gf("a").identity)
        assert not pool.contains(gf("b").identity)

    def test_all_pinned_exceeds_capacity_gracefully(self):
        pool = SharedFilePool(capacity_bytes=2000)
        for tag in ("a", "b"):
            inode = pool.insert(gf(tag, 1000))
            inode.nlink += 1
        pool.insert(gf("c", 1000))
        assert pool.used_bytes == 3000
        assert pool.eviction_failures == 1

    def test_oversized_file_accepted_with_overflow(self):
        # A file larger than the whole cache must still be served (a
        # container read depends on it); the pool evicts what it can and
        # records the pressure failure.
        pool = SharedFilePool(capacity_bytes=100)
        pool.insert(gf("small", 50))
        inode = pool.insert(gf("huge", 1000))
        assert inode.size == 1000
        assert pool.used_bytes == 1000  # small was evicted, huge overflows
        assert pool.eviction_failures == 1

    def test_unbounded_pool_never_evicts(self):
        pool = SharedFilePool()
        for index in range(50):
            pool.insert(gf(f"f{index}", 10_000))
        assert pool.evictions == 0
        assert pool.file_count == 50

    def test_drop_is_administrative(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.drop(gf("a").identity)
        assert not pool.contains(gf("a").identity)
        assert pool.evictions == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            SharedFilePool(capacity_bytes=-1)

    def test_reset_stats(self):
        pool = SharedFilePool()
        pool.insert(gf("a"))
        pool.get(gf("a").identity)
        pool.reset_stats()
        assert pool.hits == 0
