"""Layer archives: determinism, digests, whiteout encoding, application."""

import pytest

from repro.blob import Blob
from repro.vfs.inode import FileKind, Metadata
from repro.vfs.tar import LayerArchive, OPAQUE_MARKER, TarEntry, WHITEOUT_PREFIX
from repro.vfs.tree import FileSystemTree


def make_tree():
    t = FileSystemTree()
    t.mkdir("/bin")
    t.write_file("/bin/sh", b"shell", meta=Metadata(mode=0o755))
    t.symlink("/bin/bash", "sh")
    t.mkdir("/etc")
    t.write_file("/etc/conf", b"key=value")
    return t


class TestEntries:
    def test_file_entry_requires_blob(self):
        with pytest.raises(Exception):
            TarEntry(path="/f", kind=FileKind.FILE, mode=0o644, uid=0, gid=0)

    def test_symlink_entry_requires_target(self):
        with pytest.raises(Exception):
            TarEntry(path="/l", kind=FileKind.SYMLINK, mode=0o777, uid=0, gid=0)

    def test_whiteout_kind_rejected(self):
        with pytest.raises(Exception):
            TarEntry(path="/w", kind=FileKind.WHITEOUT, mode=0, uid=0, gid=0)

    def test_archived_size_includes_header_and_padding(self):
        entry = TarEntry(
            path="/f", kind=FileKind.FILE, mode=0o644, uid=0, gid=0,
            blob=Blob.from_bytes(b"x" * 513),
        )
        assert entry.archived_size == 512 + 1024  # header + padded data


class TestArchive:
    def test_digest_deterministic(self):
        a = LayerArchive.from_tree(make_tree())
        b = LayerArchive.from_tree(make_tree())
        assert a.digest == b.digest
        assert a == b

    def test_digest_changes_with_content(self):
        t = make_tree()
        t.write_file("/etc/conf", b"key=other")
        assert LayerArchive.from_tree(t) != LayerArchive.from_tree(make_tree())

    def test_digest_changes_with_mode(self):
        t = make_tree()
        t.stat("/etc/conf").meta.mode = 0o600
        assert LayerArchive.from_tree(t) != LayerArchive.from_tree(make_tree())

    def test_entries_are_sorted(self):
        archive = LayerArchive.from_tree(make_tree())
        archive_paths = [entry.path for entry in archive]
        assert archive_paths == sorted(archive_paths)

    def test_sizes(self):
        archive = LayerArchive.from_tree(make_tree())
        assert archive.uncompressed_size > 0
        assert 0 < archive.compressed_size < archive.uncompressed_size
        assert archive.file_count == 2

    def test_extract_roundtrip(self):
        original = make_tree()
        extracted = LayerArchive.from_tree(original).extract()
        assert LayerArchive.from_tree(extracted) == LayerArchive.from_tree(original)
        assert extracted.read_bytes("/bin/sh") == b"shell"
        assert extracted.readlink("/bin/bash") == "sh"
        assert extracted.stat("/bin/sh").meta.mode == 0o755


class TestWhiteoutEncoding:
    def test_whiteout_becomes_wh_entry(self):
        t = make_tree()
        t.whiteout("/etc/conf")
        archive = LayerArchive.from_tree(t)
        wh_paths = [e.path for e in archive if e.is_whiteout]
        assert wh_paths == [f"/etc/{WHITEOUT_PREFIX}conf"]

    def test_opaque_dir_emits_marker(self):
        t = make_tree()
        t.set_opaque("/etc")
        archive = LayerArchive.from_tree(t)
        markers = [e.path for e in archive if e.is_opaque_marker]
        assert markers == [f"/etc/{OPAQUE_MARKER}"]

    def test_apply_whiteout_deletes(self):
        base = make_tree()
        diff = FileSystemTree()
        diff.mkdir("/etc")
        diff.whiteout("/etc/conf")
        LayerArchive.from_tree(diff).apply_to(base)
        assert not base.exists("/etc/conf")

    def test_apply_opaque_clears_directory(self):
        base = make_tree()
        diff = FileSystemTree()
        diff.mkdir("/etc")
        diff.set_opaque("/etc")
        diff.write_file("/etc/only", b"survivor")
        LayerArchive.from_tree(diff).apply_to(base)
        assert base.listdir("/etc") == ["only"]


class TestApply:
    def test_apply_overwrites_files(self):
        base = make_tree()
        diff = FileSystemTree()
        diff.mkdir("/etc")
        diff.write_file("/etc/conf", b"v2")
        LayerArchive.from_tree(diff).apply_to(base)
        assert base.read_bytes("/etc/conf") == b"v2"

    def test_apply_replaces_file_with_dir(self):
        base = make_tree()
        diff = FileSystemTree()
        diff.mkdir("/etc/conf", parents=True)
        diff.write_file("/etc/conf/sub", b"inner")
        LayerArchive.from_tree(diff).apply_to(base)
        assert base.is_dir("/etc/conf")
        assert base.read_bytes("/etc/conf/sub") == b"inner"

    def test_apply_replaces_dir_with_file(self):
        base = make_tree()
        diff = FileSystemTree()
        diff.write_file("/bin", b"now a file", parents=False)
        # Direct construction: a diff whose /bin is a file.
        LayerArchive.from_tree(diff).apply_to(base)
        assert base.is_file("/bin")

    def test_apply_replaces_symlink(self):
        base = make_tree()
        diff = FileSystemTree()
        diff.mkdir("/bin")
        diff.symlink("/bin/bash", "/bin/sh")
        LayerArchive.from_tree(diff).apply_to(base)
        assert base.readlink("/bin/bash") == "/bin/sh"


class TestExtractDiff:
    def test_preserves_whiteouts_as_inodes(self):
        t = FileSystemTree()
        t.mkdir("/etc")
        t.write_file("/etc/a", b"a")
        t.whiteout("/etc/b")
        diff = LayerArchive.from_tree(t).extract_diff()
        nodes = dict(diff.walk("/", include_whiteouts=True))
        assert nodes["/etc/b"].is_whiteout
        assert nodes["/etc/a"].is_file

    def test_preserves_opaque_flag(self):
        t = FileSystemTree()
        t.mkdir("/etc")
        t.set_opaque("/etc")
        diff = LayerArchive.from_tree(t).extract_diff()
        assert diff.stat("/etc").opaque

    def test_wire_roundtrip_preserves_digest(self):
        t = make_tree()
        t.whiteout("/etc/conf")
        archive = LayerArchive.from_tree(t)
        rebuilt = LayerArchive.from_tree(archive.extract_diff())
        assert rebuilt == archive
