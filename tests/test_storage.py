"""Disk models and the content-addressed object store."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import NotFoundError, StorageError
from repro.storage.disk import Disk, DiskProfile, HDD, SSD
from repro.storage.objectstore import ObjectStore


class TestDisk:
    def test_read_time_formula(self):
        clock = SimClock()
        disk = Disk(clock, DiskProfile(name="t", sequential_bps=100.0, per_file_op_s=0.5))
        assert disk.read_time(200, file_ops=2) == pytest.approx(3.0)

    def test_read_advances_clock(self):
        clock = SimClock()
        disk = Disk(clock, HDD)
        duration = disk.read(1_000_000, file_ops=3)
        assert clock.now == pytest.approx(duration)
        assert disk.bytes_read == 1_000_000
        assert disk.file_ops == 3

    def test_write_accounting(self):
        clock = SimClock()
        disk = Disk(clock, SSD)
        disk.write(500, file_ops=1)
        assert disk.bytes_written == 500

    def test_metadata_op(self):
        clock = SimClock()
        disk = Disk(clock, HDD)
        disk.metadata_op(10)
        assert clock.now == pytest.approx(10 * HDD.per_file_op_s)

    def test_ssd_is_faster_than_hdd(self):
        clock = SimClock()
        assert Disk(clock, SSD).read_time(10**9, 1000) < Disk(clock, HDD).read_time(
            10**9, 1000
        )

    def test_rejects_negative(self):
        disk = Disk(SimClock(), HDD)
        with pytest.raises(ValueError):
            disk.read(-1)
        with pytest.raises(ValueError):
            disk.metadata_op(-1)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            DiskProfile(name="bad", sequential_bps=0, per_file_op_s=0)
        with pytest.raises(ValueError):
            DiskProfile(name="bad", sequential_bps=1, per_file_op_s=-1)


class TestObjectStore:
    def test_upload_query_download(self):
        store = ObjectStore()
        assert store.upload("k1", "payload", size=100, stored_size=40)
        assert store.query("k1")
        record, payload = store.download("k1")
        assert payload == "payload"
        assert record.size == 100
        assert record.stored_size == 40

    def test_duplicate_upload_is_dedup(self):
        store = ObjectStore()
        store.upload("k", "a", size=10)
        assert not store.upload("k", "b", size=10)
        assert store.download("k")[1] == "a"  # first write wins
        assert store.object_count == 1

    def test_missing_download_raises(self):
        with pytest.raises(NotFoundError):
            ObjectStore().download("nope")

    def test_delete(self):
        store = ObjectStore()
        store.upload("k", "v", size=1)
        store.delete("k")
        assert not store.query("k")
        with pytest.raises(NotFoundError):
            store.delete("k")

    def test_totals(self):
        store = ObjectStore()
        store.upload("a", None, size=100, stored_size=30)
        store.upload("b", None, size=200, stored_size=60)
        assert store.total_size == 300
        assert store.total_stored_size == 90
        assert len(store) == 2

    def test_stored_size_defaults_to_size(self):
        store = ObjectStore()
        store.upload("a", None, size=100)
        assert store.stat("a").stored_size == 100

    def test_negative_size_rejected(self):
        with pytest.raises(StorageError):
            ObjectStore().upload("a", None, size=-1)

    def test_keys_sorted(self):
        store = ObjectStore()
        store.upload("b", None, size=1)
        store.upload("a", None, size=1)
        assert list(store.keys()) == ["a", "b"]

    def test_contains(self):
        store = ObjectStore()
        store.upload("x", None, size=1)
        assert "x" in store
        assert "y" not in store
