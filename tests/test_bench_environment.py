"""Testbed assembly and publishing helpers."""

import pytest

from repro.bench.environment import Testbed, make_testbed, publish_images
from repro.bench.reporting import format_table, gb, pct
from repro.gear.pool import EvictionPolicy
from repro.storage.disk import SSD


class TestMakeTestbed:
    def test_default_topology(self, testbed):
        # Both registries are bound on the shared transport (§IV: "Gear
        # Registry and Docker Registry are deployed on the same node").
        assert testbed.transport.has_endpoint("docker-registry")
        assert testbed.transport.has_endpoint("gear-registry")
        assert not testbed.transport.has_endpoint("unbound-service")
        assert testbed.link.bandwidth_mbps == 904
        assert testbed.daemon.clock is testbed.clock
        assert testbed.gear_driver.daemon is testbed.daemon

    def test_bandwidth_override(self):
        bed = make_testbed(bandwidth_mbps=5)
        assert bed.link.bandwidth_mbps == 5

    def test_set_bandwidth_in_place(self, testbed):
        testbed.set_bandwidth(20)
        assert testbed.link.bandwidth_mbps == 20

    def test_pool_configuration(self):
        bed = make_testbed(pool_capacity_bytes=1234,
                           pool_policy=EvictionPolicy.FIFO)
        assert bed.gear_driver.pool.capacity_bytes == 1234
        assert bed.gear_driver.pool.policy is EvictionPolicy.FIFO

    def test_disk_profiles(self):
        bed = make_testbed(registry_disk=SSD)
        assert bed.converter.disk.profile.name == "ssd"

    def test_fresh_client_shares_registries_not_state(self, small_corpus):
        bed = make_testbed()
        publish_images(bed, small_corpus.images, convert=False)
        bed.daemon.pull("nginx:v1")
        fresh = bed.fresh_client()
        assert fresh.docker_registry is bed.docker_registry
        assert fresh.clock is bed.clock
        assert not fresh.daemon.has_image("nginx:v1")
        assert fresh.gear_driver.pool is not bed.gear_driver.pool


class TestPublishImages:
    def test_publish_without_convert(self, small_corpus, testbed):
        reports = publish_images(testbed, small_corpus.images, convert=False)
        assert reports == []
        assert testbed.docker_registry.manifest_count == len(small_corpus.images)
        assert testbed.gear_registry.file_count == 0

    def test_publish_with_convert(self, small_corpus, testbed):
        reports = publish_images(testbed, small_corpus.images, convert=True)
        assert len(reports) == len(small_corpus.images)
        # Index images double the manifest count.
        assert testbed.docker_registry.manifest_count == 2 * len(
            small_corpus.images
        )
        assert testbed.gear_registry.file_count > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["A", "Bbb"], [("x", 1), ("yy", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_gb_and_pct(self):
        assert gb(1.5e9) == "1.5"
        assert pct(0.537) == "53.7%"
