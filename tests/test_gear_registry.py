"""Gear Registry: the three verbs, dedup, compression accounting, RPC."""

import pytest

from repro.blob import Blob
from repro.common.clock import SimClock
from repro.common.errors import NotFoundError
from repro.gear.gearfile import GearFile
from repro.gear.registry import GearRegistry
from repro.net.link import Link
from repro.net.transport import RpcTransport


def gear_file(content=b"payload" * 100):
    return GearFile.from_blob(Blob.from_bytes(content))


class TestVerbs:
    def test_query_upload_download(self):
        registry = GearRegistry()
        gf = gear_file()
        assert not registry.query(gf.identity)
        assert registry.upload(gf)
        assert registry.query(gf.identity)
        assert registry.download(gf.identity).blob == gf.blob

    def test_upload_dedups_by_identity(self):
        registry = GearRegistry()
        gf = gear_file()
        registry.upload(gf)
        assert not registry.upload(gear_file())
        assert registry.file_count == 1

    def test_download_missing_raises(self):
        with pytest.raises(NotFoundError):
            GearRegistry().download("nope")

    def test_upload_many(self):
        registry = GearRegistry()
        files = [gear_file(b"a" * 50), gear_file(b"b" * 50), gear_file(b"a" * 50)]
        stored, deduped = registry.upload_many(files)
        assert stored == 2
        assert deduped == 1

    def test_missing_filter(self):
        registry = GearRegistry()
        gf = gear_file()
        registry.upload(gf)
        assert registry.missing([gf.identity, "absent"]) == ["absent"]


class TestAccounting:
    def test_compressed_storage(self):
        registry = GearRegistry(compress=True)
        gf = gear_file(b"z" * 100_000)
        registry.upload(gf)
        assert registry.stored_bytes == gf.compressed_size
        assert registry.logical_bytes == gf.size

    def test_uncompressed_mode(self):
        registry = GearRegistry(compress=False)
        gf = gear_file(b"z" * 100_000)
        registry.upload(gf)
        assert registry.stored_bytes == gf.size


class TestRpc:
    def make(self):
        clock = SimClock()
        link = Link(clock, bandwidth_mbps=904)
        transport = RpcTransport(link)
        registry = GearRegistry()
        transport.bind(registry.endpoint())
        return link, transport, registry

    def test_download_charges_compressed_bytes(self):
        link, transport, registry = self.make()
        gf = gear_file(b"q" * 50_000)
        registry.upload(gf)
        fetched = transport.call(GearRegistry.ENDPOINT_NAME, "download", gf.identity)
        assert fetched.identity == gf.identity
        assert link.log.total_bytes >= gf.compressed_size

    def test_query_and_upload_over_rpc(self):
        _, transport, registry = self.make()
        gf = gear_file()
        assert not transport.call(GearRegistry.ENDPOINT_NAME, "query", gf.identity)
        transport.call(
            GearRegistry.ENDPOINT_NAME, "upload", gf,
            request_payload_bytes=gf.compressed_size,
        )
        assert registry.query(gf.identity)

    def test_chunk_map_and_chunk_download(self):
        link, transport, registry = self.make()
        gf = GearFile.from_blob(Blob.synthetic("big", 128 * 1024 * 4))
        registry.upload(gf)
        blob = transport.call(GearRegistry.ENDPOINT_NAME, "chunk_map", gf.identity)
        assert len(blob.chunks) == 4
        chunk = transport.call(
            GearRegistry.ENDPOINT_NAME, "download_chunk", gf.identity, 2
        )
        assert chunk.token == blob.chunks[2].token

    def test_chunk_download_out_of_range(self):
        _, transport, registry = self.make()
        gf = gear_file()
        registry.upload(gf)
        with pytest.raises(NotFoundError):
            transport.call(
                GearRegistry.ENDPOINT_NAME, "download_chunk", gf.identity, 99
            )
