"""The Slacker baseline: block-level lazy pulls, no sharing."""

import pytest

from repro.baselines.slacker import (
    FS_BLOCK_SIZE,
    META_BLOCKS_PER_FILE,
    NFS_RSIZE,
    SlackerDriver,
)
from repro.common.clock import SimClock
from repro.common.errors import NotFoundError
from repro.net.link import Link
from repro.workloads.corpus import CorpusBuilder, CorpusConfig


@pytest.fixture(scope="module")
def env():
    corpus = CorpusBuilder(
        CorpusConfig(
            seed=7, file_scale=0.2, size_scale=0.05,
            series_names=("nginx",), versions_cap=2,
        )
    ).build()
    return corpus


def make_driver():
    clock = SimClock()
    link = Link(clock, bandwidth_mbps=904)
    return clock, link, SlackerDriver(clock, link)


class TestDeploy:
    def test_deploy_requires_provisioning(self, env):
        _, _, driver = make_driver()
        with pytest.raises(NotFoundError):
            driver.deploy("nginx:v1")

    def test_pull_phase_is_cheap(self, env):
        clock, link, driver = make_driver()
        driver.provision_image(env.get("nginx:v1"))
        before = clock.now
        driver.deploy("nginx:v1")
        # Snapshot clone + start: well under a second, no data transfer.
        assert clock.now - before < 1.0
        assert link.log.total_bytes == 0

    def test_read_fetches_blocks(self, env):
        _, link, driver = make_driver()
        generated = env.get("nginx:v1")
        driver.provision_image(generated)
        mount = driver.deploy("nginx:v1")
        path, size = generated.trace.accesses[0]
        mount.read_blob(path)
        stats = mount.slacker_stats
        data_blocks = -(-max(size, 1) // FS_BLOCK_SIZE)
        assert stats.blocks_fetched == data_blocks + META_BLOCKS_PER_FILE
        assert stats.bytes_fetched == stats.blocks_fetched * FS_BLOCK_SIZE
        assert link.log.total_bytes == stats.bytes_fetched

    def test_block_fetch_exceeds_file_size(self, env):
        # Amplification: blocks + metadata always cost more than the file.
        _, _, driver = make_driver()
        generated = env.get("nginx:v1")
        driver.provision_image(generated)
        mount = driver.deploy("nginx:v1")
        path, size = generated.trace.accesses[0]
        mount.read_blob(path)
        assert mount.slacker_stats.bytes_fetched > size

    def test_requests_coalesce_to_rsize(self, env):
        _, _, driver = make_driver()
        generated = env.get("nginx:v1")
        driver.provision_image(generated)
        mount = driver.deploy("nginx:v1")
        path, size = generated.trace.accesses[0]
        mount.read_blob(path)
        stats = mount.slacker_stats
        assert stats.requests == -(-stats.bytes_fetched // NFS_RSIZE)

    def test_repeat_read_is_local(self, env):
        _, link, driver = make_driver()
        generated = env.get("nginx:v1")
        driver.provision_image(generated)
        mount = driver.deploy("nginx:v1")
        path, _ = generated.trace.accesses[0]
        mount.read_blob(path)
        bytes_after = link.log.total_bytes
        mount.read_blob(path)
        assert link.log.total_bytes == bytes_after


class TestNoSharing:
    def test_containers_do_not_share_fetched_blocks(self, env):
        # Fig. 10: "Slacker's time shows little change due to the absence
        # of [a] sharing mechanism."
        _, link, driver = make_driver()
        generated = env.get("nginx:v1")
        driver.provision_image(generated)
        first = driver.deploy("nginx:v1")
        path, _ = generated.trace.accesses[0]
        first.read_blob(path)
        first_bytes = link.log.total_bytes
        second = driver.deploy("nginx:v1")
        second.read_blob(path)
        assert link.log.total_bytes == pytest.approx(2 * first_bytes, rel=0.01)

    def test_versions_do_not_share(self, env):
        _, link, driver = make_driver()
        v1, v2 = env.get("nginx:v1"), env.get("nginx:v2")
        driver.provision_image(v1)
        driver.provision_image(v2)
        mount1 = driver.deploy("nginx:v1")
        for path, _ in v1.trace.accesses[:5]:
            mount1.read_blob(path)
        bytes_v1 = link.log.total_bytes
        mount2 = driver.deploy("nginx:v2")
        for path, _ in v2.trace.accesses[:5]:
            mount2.read_blob(path)
        # Even shared content is re-fetched for the second device.
        assert link.log.total_bytes > bytes_v1 * 1.5
