"""The fault-injection network layer and client resilience machinery.

Covers the four fault kinds (drop, corruption, latency spike, outage),
the retry/backoff policy the transport applies against them, integrity
quarantine-and-refetch, degraded-mode deployment, and — critically —
determinism: the same seed and the same fault plan must produce
byte-identical transfer logs and deploy timings on every run.
"""

import pytest

from repro.blob import Blob
from repro.common.clock import SimClock
from repro.common.errors import (
    CorruptPayloadError,
    IntegrityError,
    TimeoutError,
    TransportError,
    UnavailableError,
)
from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.gear.gearfile import GearFile
from repro.net.faults import FaultPlan, FaultyLink, OutageWindow, lossy_plan
from repro.net.link import Link
from repro.net.resilience import RetryPolicy
from repro.net.transport import RpcEndpoint, RpcTransport


def make_faulty_transport(plan, *, retry=None, bandwidth_mbps=8.0):
    clock = SimClock()
    link = FaultyLink(clock, plan, bandwidth_mbps=bandwidth_mbps)
    transport = RpcTransport(link, retry_policy=retry)
    endpoint = RpcEndpoint("svc")
    endpoint.register("echo", lambda value: (value, 1000))
    transport.bind(endpoint)
    return clock, link, transport, endpoint


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_detect_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(spike_factor=0.5)
        with pytest.raises(ValueError):
            OutageWindow(start_s=-1, duration_s=1)

    def test_targeting(self):
        plan = FaultPlan(targets=("gear-registry",))
        assert plan.applies_to("gear-registry")
        assert not plan.applies_to("docker-registry")
        assert not plan.applies_to(None)
        assert FaultPlan().applies_to("anything")

    def test_null_plan(self):
        assert FaultPlan().is_null
        assert not lossy_plan().is_null
        assert not FaultPlan(outages=(OutageWindow(0, 1),)).is_null


class TestFaultyLink:
    def test_unscoped_transfers_never_fault(self):
        plan = FaultPlan(drop_rate=1.0)
        clock = SimClock()
        link = FaultyLink(clock, plan)
        # Raw (non-RPC) transfers bypass fault injection entirely.
        assert link.transfer(1000) > 0
        assert link.log.total_requests == 1

    def test_drop_charges_timeout_and_raises(self):
        plan = FaultPlan(drop_rate=1.0, timeout_s=2.5)
        clock, link, transport, _ = make_faulty_transport(plan)
        with pytest.raises(TimeoutError):
            transport.call("svc", "echo", 1)
        # The failed attempt cost the full client timeout...
        assert clock.now == pytest.approx(2.5)
        # ...and never completed, so it is not in the transfer log.
        assert link.log.total_requests == 0
        assert link.fault_stats.drops == 1

    def test_outage_applies_only_inside_window(self):
        plan = FaultPlan(
            outages=(OutageWindow(start_s=0.0, duration_s=5.0),),
            outage_stall_s=0.25,
        )
        clock, link, transport, _ = make_faulty_transport(plan)
        with pytest.raises(UnavailableError):
            transport.call("svc", "echo", 1)
        assert clock.now == pytest.approx(0.25)
        # Walk the clock past the window: the endpoint recovers.
        clock.advance(10.0)
        assert transport.call("svc", "echo", 7) == 7
        assert link.fault_stats.outage_rejections == 1

    def test_outage_windows_relative_to_arming(self):
        plan = FaultPlan(outages=(OutageWindow(start_s=0.0, duration_s=5.0),))
        clock, link, transport, _ = make_faulty_transport(plan)
        clock.advance(100.0)
        link.arm()
        with pytest.raises(UnavailableError):
            transport.call("svc", "echo", 1)

    def test_spike_slows_but_succeeds(self):
        clean = FaultPlan()
        spiky = FaultPlan(spike_rate=1.0, spike_factor=4.0)
        _, _, clean_transport, _ = make_faulty_transport(clean)
        clock, link, transport, _ = make_faulty_transport(spiky)
        assert transport.call("svc", "echo", 1) == 1
        assert clean_transport.call("svc", "echo", 1) == 1
        assert clock.now > clean_transport.link.clock.now
        assert link.fault_stats.spikes >= 1
        assert link.log.total_requests == 2  # both transfers completed

    def test_detected_corruption_raises(self):
        plan = FaultPlan(corrupt_rate=1.0, corrupt_detect_rate=1.0)
        _, link, transport, _ = make_faulty_transport(plan)
        with pytest.raises(CorruptPayloadError):
            transport.call("svc", "echo", 1)
        assert link.fault_stats.corruptions == 1
        assert link.fault_stats.corruptions_detected == 1

    def test_undetected_corruption_tampers_gear_files(self):
        plan = FaultPlan(corrupt_rate=1.0, corrupt_detect_rate=0.0)
        clock = SimClock()
        link = FaultyLink(clock, plan)
        transport = RpcTransport(link)
        blob = Blob.from_bytes(b"the real content")
        endpoint = RpcEndpoint("svc")
        endpoint.register(
            "download", lambda: (GearFile.from_blob(blob), blob.size)
        )
        transport.bind(endpoint)
        fetched = transport.call("svc", "download")
        assert fetched.identity == blob.fingerprint
        assert fetched.blob.fingerprint != blob.fingerprint  # tampered

    def test_undetected_corruption_of_untamperable_payload_is_detected(self):
        # Booleans and manifests cannot carry silent damage to the app
        # layer; the framing checksum catches them instead.
        plan = FaultPlan(corrupt_rate=1.0, corrupt_detect_rate=0.0)
        _, _, transport, _ = make_faulty_transport(plan)
        with pytest.raises(CorruptPayloadError):
            transport.call("svc", "echo", 1)

    def test_fault_decisions_deterministic_across_runs(self):
        def run():
            plan = FaultPlan(seed="det", drop_rate=0.3, spike_rate=0.2)
            clock, link, transport, _ = make_faulty_transport(plan)
            outcomes = []
            for i in range(40):
                try:
                    transport.call("svc", "echo", i)
                    outcomes.append("ok")
                except TransportError as error:
                    outcomes.append(type(error).__name__)
            return outcomes, clock.now, link.fault_stats.drops

        assert run() == run()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=2.0, max_backoff_s=1.0)

    def test_backoff_bounded_and_deterministic(self):
        a = RetryPolicy(seed="x")
        b = RetryPolicy(seed="x")
        prev = None
        for _ in range(50):
            sleep_a = a.next_backoff(prev)
            sleep_b = b.next_backoff(prev)
            assert sleep_a == sleep_b
            assert a.base_backoff_s <= sleep_a <= a.max_backoff_s
            prev = sleep_a

    def test_only_transport_faults_are_retryable(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TimeoutError("x"))
        assert policy.is_retryable(UnavailableError("x"))
        assert policy.is_retryable(CorruptPayloadError("x"))
        assert not policy.is_retryable(TransportError("x"))
        assert not policy.is_retryable(KeyError("x"))

    def test_budget_exhaustion_stops_retries(self):
        policy = RetryPolicy(budget_s=0.0)
        assert not policy.should_retry(
            TimeoutError("x"), attempt=1, elapsed_s=0.0
        )

    def test_deadline_stops_retries(self):
        policy = RetryPolicy(deadline_s=1.0)
        assert policy.should_retry(TimeoutError("x"), attempt=1, elapsed_s=0.5)
        assert not policy.should_retry(
            TimeoutError("x"), attempt=1, elapsed_s=1.5
        )


class TestTransportRetries:
    def test_retry_rides_out_an_outage(self):
        # Outage shorter than the retry budget: attempts fail, back off,
        # and the call eventually lands — the caller never notices.
        plan = FaultPlan(
            outages=(OutageWindow(start_s=0.0, duration_s=1.0),),
            outage_stall_s=0.4,
        )
        policy = RetryPolicy(
            max_attempts=8, base_backoff_s=0.2, max_backoff_s=1.0,
            deadline_s=None, budget_s=None,
        )
        clock, link, transport, endpoint = make_faulty_transport(
            plan, retry=policy
        )
        assert transport.call("svc", "echo", 5) == 5
        assert endpoint.stats.retries >= 1
        assert endpoint.stats.errors >= 1
        assert endpoint.stats.giveups == 0
        assert endpoint.stats.calls == 1
        assert clock.now > 1.0  # rode past the window

    def test_giveup_past_budget(self):
        plan = FaultPlan(drop_rate=1.0, timeout_s=0.1)
        policy = RetryPolicy(max_attempts=3)
        _, _, transport, endpoint = make_faulty_transport(plan, retry=policy)
        with pytest.raises(TimeoutError):
            transport.call("svc", "echo", 1)
        assert endpoint.stats.errors == 3
        assert endpoint.stats.retries == 2
        assert endpoint.stats.giveups == 1
        assert endpoint.stats.calls == 0

    def test_handler_errors_not_retried_but_counted(self):
        clock = SimClock()
        transport = RpcTransport(
            Link(clock), retry_policy=RetryPolicy(max_attempts=5)
        )
        endpoint = RpcEndpoint("svc")
        calls = []

        def boom():
            calls.append(1)
            raise KeyError("nope")

        endpoint.register("boom", boom)
        transport.bind(endpoint)
        with pytest.raises(KeyError):
            transport.call("svc", "boom")
        assert len(calls) == 1  # no retry of application errors
        assert endpoint.stats.errors == 1
        assert endpoint.stats.retries == 0
        assert endpoint.stats.calls == 0

    def test_stats_count_failed_calls(self):
        # Satellite: benchmarks must not under-report traffic — failed
        # calls show up in `errors` even without a retry policy.
        clock = SimClock()
        transport = RpcTransport(Link(clock))
        endpoint = RpcEndpoint("svc")
        endpoint.register("missing", lambda: (_ for _ in ()).throw(KeyError()))
        transport.bind(endpoint)
        with pytest.raises(KeyError):
            transport.call("svc", "missing")
        assert endpoint.stats.errors == 1
        assert endpoint.stats.calls == 0

    def test_no_policy_single_attempt(self):
        plan = FaultPlan(drop_rate=1.0)
        _, _, transport, endpoint = make_faulty_transport(plan, retry=None)
        with pytest.raises(TimeoutError):
            transport.call("svc", "echo", 1)
        assert endpoint.stats.errors == 1
        assert endpoint.stats.retries == 0
        assert endpoint.stats.giveups == 0  # no policy to give up on


FAULTY = FaultPlan(
    seed="e2e", drop_rate=0.05, corrupt_rate=0.05, corrupt_detect_rate=0.5,
    timeout_s=0.2, targets=("gear-registry",),
)


def deploy_first_nginx(testbed, corpus):
    publish_images(testbed, corpus.images, convert=True)
    testbed.arm_faults()
    generated = corpus.get("nginx:v1")
    result = deploy_with_gear(testbed, generated)
    return generated, result


class TestDeterministicDeploys:
    def test_same_plan_same_seed_identical_logs_and_timings(self, small_corpus):
        def run():
            testbed = make_testbed(fault_plan=FAULTY)
            _, result = deploy_first_nginx(testbed, small_corpus)
            records = [
                (r.start, r.duration, r.payload_bytes, r.label)
                for r in testbed.link.log.records
            ]
            return records, testbed.clock.now, result.retries, result.errors

        first = run()
        second = run()
        assert first == second

    def test_zero_rate_plan_matches_seed_behaviour_exactly(self, small_corpus):
        # A FaultyLink with an all-zero plan plus an (unused) RetryPolicy
        # must be byte-identical to the plain seed testbed: same transfer
        # log, same virtual timings.
        plain = make_testbed()
        nulled = make_testbed(fault_plan=FaultPlan())
        _, plain_result = deploy_first_nginx(plain, small_corpus)
        _, nulled_result = deploy_first_nginx(nulled, small_corpus)
        assert plain_result.pull_s == nulled_result.pull_s
        assert plain_result.run_s == nulled_result.run_s
        assert plain_result.retries == nulled_result.retries == 0
        assert plain.clock.now == nulled.clock.now
        plain_records = [
            (r.start, r.duration, r.payload_bytes, r.label)
            for r in plain.link.log.records
        ]
        nulled_records = [
            (r.start, r.duration, r.payload_bytes, r.label)
            for r in nulled.link.log.records
        ]
        assert plain_records == nulled_records


class TestFaultyDeployEndToEnd:
    def test_lossy_deploy_completes_verified(self, small_corpus):
        testbed = make_testbed(fault_plan=FAULTY)
        generated, result = deploy_first_nginx(testbed, small_corpus)
        # Acceptance: the deploy completed, showed nonzero retries, and
        # every trace path reads back fingerprint-verified content.
        assert result.retries > 0
        container = testbed.gear_driver.containers()[0]
        index = testbed.gear_driver.get_index("nginx.gear:v1")
        for path in generated.trace.paths:
            blob = container.mount.read_blob(path)
            entry = index.entries.get(path)
            if entry is not None and not entry.identity.startswith("uid-"):
                assert blob.fingerprint == entry.identity
        # Zero corrupted payloads cached: every pooled inode hashes to
        # its identity.
        pool = testbed.gear_driver.pool
        for identity in list(pool.identities()):
            inode = pool.get(identity)
            if not identity.startswith("uid-"):
                assert inode.blob.fingerprint == identity

    def test_pool_insert_rejects_poison(self):
        from repro.gear.pool import SharedFilePool

        pool = SharedFilePool()
        poison = GearFile(identity="a" * 32, blob=Blob.from_bytes(b"junk"))
        with pytest.raises(IntegrityError):
            pool.insert(poison)
        assert len(pool) == 0

    def test_quarantine_then_refetch_serves_good_copy(self):
        # A registry whose first download is corrupt and second is good:
        # the viewer quarantines, refetches, and caches only the good copy.
        from repro.gear.index import GearIndex
        from repro.gear.pool import SharedFilePool
        from repro.gear.viewer import GearFileViewer
        from repro.vfs.tree import FileSystemTree

        clock = SimClock()
        transport = RpcTransport(Link(clock))
        blob = Blob.from_bytes(b"good content")
        identity = blob.fingerprint
        served = []

        def download(requested):
            if not served:
                served.append("bad")
                return GearFile(
                    identity=identity, blob=Blob.from_bytes(b"flipped bits")
                ), 12
            return GearFile(identity=identity, blob=blob), blob.size

        endpoint = RpcEndpoint("gear-registry")
        endpoint.register("download", download)
        transport.bind(endpoint)

        root = FileSystemTree()
        root.write_file("/app/bin", blob, parents=True)
        index = GearIndex.from_tree("img", "v1", root)
        pool = SharedFilePool()
        viewer = GearFileViewer(index, pool, transport=transport)
        assert viewer.read_bytes("/app/bin") == b"good content"
        assert viewer.fault_stats.integrity_failures == 1
        assert viewer.fault_stats.refetches == 1
        assert pool.contains(identity)
        assert pool.get(identity).blob.fingerprint == identity


class TestDegradedMode:
    OUTAGE = FaultPlan(
        seed="outage",
        outages=(OutageWindow(start_s=0.0, duration_s=10_000.0),),
        targets=("gear-registry",),
    )

    def test_outage_falls_back_to_docker_pull(self, small_corpus):
        # The outage targets only the Gear registry; the index pull and
        # the fallback layer pull go through the healthy Docker registry.
        policy = RetryPolicy(max_attempts=2, deadline_s=5.0, budget_s=10.0)
        testbed = make_testbed(fault_plan=self.OUTAGE, retry_policy=policy)
        generated, result = deploy_first_nginx(testbed, small_corpus)
        assert result.degraded
        container = testbed.gear_driver.containers()[0]
        stats = container.mount.fault_stats
        assert stats.degraded_fetches > 0
        # Content is still correct — served from the regular layer pull.
        for path in generated.trace.paths:
            assert container.mount.read_blob(path).size >= 0
        report = testbed.gear_driver.deploy_report("nginx.gear:v1")
        assert report is not None and report.degraded
        assert report.degraded_fetches == stats.degraded_fetches
        assert report.fallback_pull_s > 0

    def test_cached_files_served_stale_during_outage(self, small_corpus):
        # Deploy once cleanly to warm the pool, then the registry dies:
        # a second container of the same image keeps working from the
        # level-1 cache without a single degraded fetch.
        policy = RetryPolicy(max_attempts=2, deadline_s=5.0, budget_s=10.0)
        testbed = make_testbed(fault_plan=self.OUTAGE, retry_policy=policy)
        testbed.disarm_faults()  # clean warm-up first
        publish_images(testbed, small_corpus.images, convert=True)
        generated = small_corpus.get("nginx:v1")
        container, _ = testbed.gear_driver.deploy("nginx.gear:v1")
        for path in generated.trace.paths:
            container.mount.read_bytes(path)
        assert container.mount.fault_stats.degraded_fetches == 0
        testbed.arm_faults()  # outage starts now
        second = testbed.gear_driver.create_container("nginx.gear:v1")
        for path in generated.trace.paths:
            second.mount.read_bytes(path)
        assert second.mount.fault_stats.degraded_fetches == 0
        assert second.mount.fault_stats.remote_fetches == 0

    def test_total_blackout_still_surfaces_unavailable(self, small_corpus):
        # Both registries down: degraded fallback cannot help, the typed
        # outage error reaches the caller.
        plan = FaultPlan(
            seed="blackout",
            outages=(OutageWindow(start_s=0.0, duration_s=10_000.0),),
            targets=None,  # everything
        )
        policy = RetryPolicy(max_attempts=2, deadline_s=5.0, budget_s=10.0)
        testbed = make_testbed(fault_plan=plan, retry_policy=policy)
        testbed.disarm_faults()  # clean publish + deploy first
        publish_images(testbed, small_corpus.images, convert=True)
        container, _ = testbed.gear_driver.deploy("nginx.gear:v1")
        testbed.arm_faults()
        path = small_corpus.get("nginx:v1").trace.paths[0]
        with pytest.raises(UnavailableError):
            container.mount.read_bytes(path)
