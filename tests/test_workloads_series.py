"""The Table I catalog."""

import pytest

from repro.workloads.series import (
    CATEGORIES,
    CATEGORY_PROFILES,
    RUNTIME_SOURCE,
    SERIES,
    get_series,
    series_by_category,
    total_image_count,
)


class TestCatalog:
    def test_fifty_series(self):
        assert len(SERIES) == 50

    def test_corpus_total_matches_paper(self):
        # "In total, these 50 image series contain 971 images" (§V-A).
        assert total_image_count() == 971

    def test_category_sizes_match_table1(self):
        grouped = series_by_category()
        assert len(grouped["Linux Distro"]) == 6
        assert len(grouped["Language"]) == 6
        assert len(grouped["Database"]) == 11
        assert len(grouped["Web Component"]) == 11
        assert len(grouped["Application Platform"]) == 8
        assert len(grouped["Others"]) == 8

    def test_paper_named_exceptions_have_fewer_versions(self):
        # hello-world, centos, eclipse-mosquitto (§V-A).
        assert get_series("hello-world").versions < 20
        assert get_series("centos").versions < 20
        assert get_series("eclipse-mosquitto").versions < 20

    def test_series_names_unique(self):
        names = [spec.name for spec in SERIES]
        assert len(names) == len(set(names))

    def test_distro_series_have_no_base(self):
        for spec in SERIES:
            if spec.category == "Linux Distro":
                assert spec.base_distro == ""
            else:
                assert spec.base_distro

    def test_bases_are_distro_series(self):
        distros = {s.name for s in SERIES if s.category == "Linux Distro"}
        for spec in SERIES:
            if spec.base_distro:
                assert spec.base_distro in distros

    def test_runtime_sources_are_language_series(self):
        languages = {s.name for s in SERIES if s.category == "Language"}
        for consumer, source in RUNTIME_SOURCE.items():
            assert source in languages
            assert get_series(consumer).category not in ("Linux Distro", "Language")

    def test_get_series_raises_on_unknown(self):
        with pytest.raises(KeyError):
            get_series("not-a-series")

    def test_tags_ordering(self):
        tags = get_series("nginx").tags()
        assert tags[0] == "v1"
        assert tags[-1] == "v20"
        assert len(tags) == 20


class TestProfiles:
    def test_every_category_has_a_profile(self):
        for category in CATEGORIES:
            assert category in CATEGORY_PROFILES

    def test_base_categories_churn_more_than_app_categories(self):
        # §V-C: base-image updates change most data; app updates change
        # mostly application data.
        base_churn = min(
            CATEGORY_PROFILES["Linux Distro"].app_churn,
            CATEGORY_PROFILES["Language"].app_churn,
        )
        app_churn = max(
            CATEGORY_PROFILES[c].app_churn
            for c in ("Database", "Web Component", "Application Platform")
        )
        assert base_churn > app_churn

    def test_necessary_fraction_within_literature_range(self):
        # Remote-image formats download 6.4%–33.3% on demand (§II-D);
        # our profile targets sit in that band (plus config noise).
        for profile in CATEGORY_PROFILES.values():
            assert 0.05 <= profile.necessary_byte_frac <= 0.40

    def test_profile_sanity(self):
        for profile in CATEGORY_PROFILES.values():
            assert 0 < profile.app_churn < 1
            assert 0 < profile.chunk_churn <= 1
            assert profile.runtime_refresh >= 1
            assert profile.task_compute_s > 0
