"""Multi-tier edge/P2P distribution: peer serving, staleness, byzantium.

The edge tier (:mod:`repro.net.edge`) may change where Gear bytes come
from, never what gets deployed.  These tests pin the failover chain
(peer → site cache → registry), the adversity menu (stale tracker
entries, churn, mid-serve crashes, byzantine peers), and the two
headline invariants: byte-identical container filesystems vs. a
registry-only run, and deterministic replay of every scenario.
"""

import pytest

from repro.bench.deploy import container_fs_digest, deploy_with_gear
from repro.bench.environment import (
    make_edge_testbed,
    make_testbed,
    publish_images,
)
from repro.common.stats import EmptySampleError, percentile
from repro.net.edge import ChurnSchedule, EdgeStats
from repro.net.topology import Cluster, EdgeCluster, WaveReport


def _deploy_digest(testbed, generated):
    result = deploy_with_gear(testbed, generated)
    digest = container_fs_digest(testbed.gear_driver.containers()[-1])
    return result, digest


def _single_tier_run(images):
    """Registry-only ground truth: per-image (total_s, bytes, digest)."""
    root = make_testbed()
    publish_images(root, images, convert=True)
    node = root.fresh_client()
    out = []
    for generated in images:
        before = root.link.log.total_bytes
        result, digest = _deploy_digest(node, generated)
        out.append(
            (result.total_s, root.link.log.total_bytes - before, digest)
        )
    return out


class TestSingleTierEquivalence:
    def test_peerless_edge_run_is_byte_and_time_identical(self, small_corpus):
        """One node, no churn: the tier must cost exactly nothing."""
        images = small_corpus.by_series["nginx"][:2]
        control = _single_tier_run(images)
        root = make_edge_testbed()
        publish_images(root, images, convert=True)
        node = root.edge.client()
        for generated, (want_s, want_bytes, want_digest) in zip(
            images, control
        ):
            before = root.link.log.total_bytes
            result, digest = _deploy_digest(node, generated)
            assert result.total_s == want_s  # exact, not approx
            assert root.link.log.total_bytes - before == want_bytes
            assert digest == want_digest


class TestPeerServing:
    def test_second_node_fetches_from_first(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        root = make_edge_testbed()
        publish_images(root, [generated], convert=True)
        first = root.edge.client()
        _, first_digest = _deploy_digest(first, generated)
        wan_after_first = root.link.log.total_bytes
        root.edge.gossip()

        second = root.edge.client()
        _, second_digest = _deploy_digest(second, generated)
        wan_second = root.link.log.total_bytes - wan_after_first

        stats = root.edge.stats
        assert stats.peer_hits > 0
        assert stats.peer_bytes > 0
        assert stats.egress_saved_bytes > 0
        # The second deploy crossed the WAN for at most a sliver
        # (index/manifest traffic), not the image bytes.
        assert wan_second < wan_after_first / 4
        assert second_digest == first_digest
        assert root.edge.audit_integrity() == []

    def test_tracker_is_rebuilt_by_gossip(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        root = make_edge_testbed()
        publish_images(root, [generated], convert=True)
        node = root.edge.client()
        deploy_with_gear(node, generated)
        site = root.edge.sites[0]
        assert len(site.tracker) == 0  # nothing announced yet
        root.edge.gossip()
        assert len(site.tracker) > 0
        peer = root.edge.peers[0]
        for identity in site.tracker.identities():
            assert peer.name in site.tracker.resolve(identity)
            assert peer.holds(identity)

    def test_fleet_egress_reduction_vs_single_tier(self, small_corpus):
        """Acceptance: zero churn, ≥40% registry-egress reduction."""
        generated = small_corpus.by_series["nginx"][0]
        clients, concurrency = 8, 2

        flat = Cluster(clients, bandwidth_mbps=200.0)
        publish_images(flat.registry_testbed, [generated], convert=True)
        flat_wave = flat.deploy_wave(
            lambda node: deploy_with_gear(node.testbed, generated),
            concurrency=concurrency,
        )

        edge = EdgeCluster(clients, bandwidth_mbps=200.0, seed="egress")
        publish_images(edge.registry_testbed, [generated], convert=True)
        edge_wave = edge.deploy_wave(
            lambda node: deploy_with_gear(node.testbed, generated),
            concurrency=concurrency,
        )

        assert edge_wave.degraded == 0
        reduction = 1.0 - edge_wave.egress_bytes / flat_wave.egress_bytes
        assert reduction >= 0.40
        # The missing WAN bytes crossed the LAN instead.
        assert edge_wave.lan_bytes > 0
        assert edge_wave.egress_saved_bytes > 0


class TestStaleTracker:
    def test_departed_peer_entry_is_demoted_not_fatal(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        root = make_edge_testbed()
        publish_images(root, [generated], convert=True)
        first = root.edge.client()
        deploy_with_gear(first, generated)
        root.edge.gossip()
        # The peer departs *after* registration: every tracker entry for
        # it is now stale.
        root.edge.peers[0].online = False

        second = root.edge.client()
        _, digest = _deploy_digest(second, generated)

        stats = root.edge.stats
        assert stats.stale_resolutions > 0
        assert stats.peer_hits == 0
        site = root.edge.sites[0]
        for identity in site.tracker.identities():
            assert root.edge.peers[0].name not in site.tracker.resolve(
                identity
            )
        control = _single_tier_run([generated])
        assert digest == control[0][2]

    def test_evicted_holding_is_dropped_from_tracker(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]
        root = make_edge_testbed()
        publish_images(root, [generated], convert=True)
        first = root.edge.client()
        deploy_with_gear(first, generated)
        root.edge.gossip()
        # The peer stays online but its cache is wiped (eviction): the
        # tracker still advertises it until fetches demote each entry.
        root.edge.peers[0].pool.clear()

        second = root.edge.client()
        _, digest = _deploy_digest(second, generated)
        stats = root.edge.stats
        assert stats.stale_resolutions > 0
        assert digest == _single_tier_run([generated])[0][2]
        assert root.edge.audit_integrity() == []


class TestByzantinePeers:
    def test_corrupt_peer_is_blacklisted_and_bytes_stay_clean(
        self, small_corpus
    ):
        generated = small_corpus.by_series["nginx"][0]
        root = make_edge_testbed()
        publish_images(root, [generated], convert=True)
        first = root.edge.client()
        deploy_with_gear(first, generated)
        root.edge.gossip()
        root.edge.peers[0].byzantine = True

        second = root.edge.client()
        _, digest = _deploy_digest(second, generated)

        stats = root.edge.stats
        site = root.edge.sites[0]
        assert stats.blacklists >= 1
        assert root.edge.peers[0].name in site.blacklisted
        # Quarantined, refetched from the registry, bytes never poisoned.
        assert digest == _single_tier_run([generated])[0][2]
        assert root.edge.audit_integrity() == []

    def test_blacklisted_peer_is_never_consulted_again(self, small_corpus):
        images = small_corpus.by_series["nginx"][:2]
        root = make_edge_testbed()
        publish_images(root, images, convert=True)
        first = root.edge.client()
        deploy_with_gear(first, images[0])
        root.edge.gossip()
        root.edge.peers[0].byzantine = True

        second = root.edge.client()
        deploy_with_gear(second, images[0])
        blacklists_after_first = root.edge.stats.blacklists
        serves_after_first = root.edge.peers[0].serves

        # A later deploy re-gossips; the blacklisted peer must stay out
        # of the tracker and never serve again.
        root.edge.gossip()
        deploy_with_gear(second, images[1])
        assert root.edge.stats.blacklists == blacklists_after_first
        assert root.edge.peers[0].serves == serves_after_first
        site = root.edge.sites[0]
        for identity in site.tracker.identities():
            assert root.edge.peers[0].name not in site.tracker.resolve(
                identity
            )


class TestPeerCrash:
    def test_crash_mid_serve_fails_over(self, small_corpus):
        from repro.common.clock import SimClock  # noqa: F401 (idiom)
        from repro.net.faults import CrashPlan, CrashPoint

        generated = small_corpus.by_series["nginx"][0]
        root = make_edge_testbed()
        publish_images(root, [generated], convert=True)
        first = root.edge.client()
        deploy_with_gear(first, generated)
        root.edge.gossip()
        root.edge.peers[0].arm_crash(
            root.clock,
            CrashPlan(point=CrashPoint.MID_FETCH, seed="crash", op_index=0),
        )

        second = root.edge.client()
        _, digest = _deploy_digest(second, generated)

        stats = root.edge.stats
        assert stats.peer_crashes == 1
        assert stats.failovers >= 1
        assert not root.edge.peers[0].online
        assert digest == _single_tier_run([generated])[0][2]
        assert root.edge.audit_integrity() == []


class TestChurnDeterminism:
    def test_schedule_is_deterministic(self):
        names = [f"node-{i:03d}" for i in range(6)]
        a = ChurnSchedule.generate(names, seed="s", rate_per_s=3.0)
        b = ChurnSchedule.generate(names, seed="s", rate_per_s=3.0)
        assert a.events == b.events
        c = ChurnSchedule.generate(names, seed="other", rate_per_s=3.0)
        assert a.events != c.events

    def test_schedule_keeps_a_quorum_online(self):
        names = [f"node-{i:03d}" for i in range(4)]
        schedule = ChurnSchedule.generate(
            names, seed="q", rate_per_s=50.0, horizon_s=5.0
        )
        online = set(names)
        for event in schedule.events:
            if event.kind == "leave":
                online.discard(event.peer)
            else:
                online.add(event.peer)
            assert len(online) >= 1

    def test_churn_wave_replays_identically(self, small_corpus):
        generated = small_corpus.by_series["nginx"][0]

        def run():
            cluster = EdgeCluster(
                6, churn_rate_per_s=2.0, seed="replay"
            )
            publish_images(
                cluster.registry_testbed, [generated], convert=True
            )
            wave = cluster.deploy_wave(
                lambda node: deploy_with_gear(node.testbed, generated),
                concurrency=2,
            )
            return wave.as_dict()

        assert run() == run()


class TestAcceptanceWave:
    def test_churn_byzantine_32_clients_byte_identical(self, small_corpus):
        """The headline acceptance scenario: 32 clients, seeded churn,
        one mid-serve crash, one byzantine peer — every deploy completes
        with filesystems byte-identical to a fault-free registry-only
        wave, zero poisoned commits, and the corrupt peer blacklisted.
        """
        generated = small_corpus.by_series["nginx"][0]
        clients, concurrency = 32, 8

        control_digests = {}

        def control_action(node):
            result = deploy_with_gear(node.testbed, generated)
            control_digests[node.name] = container_fs_digest(
                node.testbed.gear_driver.containers()[-1]
            )
            return result

        flat = Cluster(clients, bandwidth_mbps=200.0)
        publish_images(flat.registry_testbed, [generated], convert=True)
        flat.deploy_wave(control_action, concurrency=concurrency)

        edge_digests = {}

        def edge_action(node):
            result = deploy_with_gear(node.testbed, generated)
            edge_digests[node.name] = container_fs_digest(
                node.testbed.gear_driver.containers()[-1]
            )
            return result

        cluster = EdgeCluster(
            clients,
            bandwidth_mbps=200.0,
            churn_rate_per_s=2.0,
            byzantine=(1,),
            crash_node=2,
            seed="acceptance",
        )
        publish_images(cluster.registry_testbed, [generated], convert=True)
        wave = cluster.deploy_wave(edge_action, concurrency=concurrency)

        # Every deploy completed, none degraded.
        assert len(wave.latencies_s) == clients
        assert wave.degraded == 0
        # Byte-identical to the fault-free registry-only wave.
        assert edge_digests == control_digests
        # The corrupt peer was caught and ostracised.
        assert wave.blacklists >= 1
        byz = cluster.fabric.peers[1]
        assert byz.name in cluster.fabric.site_of(byz.name).blacklisted
        # Adversity actually happened and the tier still offloaded.
        assert wave.joins + wave.leaves > 0
        assert wave.peer_hits > 0
        # Zero poisoned commits anywhere in the fabric.
        assert cluster.fabric.audit_integrity() == []


class TestEdgeMetrics:
    def test_edge_stats_registered_in_metrics_plane(self):
        from repro.obs.export import metrics_snapshot

        root = make_edge_testbed()
        snapshot = metrics_snapshot(root.metrics)
        assert any(key.startswith("edge.") for key in snapshot)

    def test_stats_reset_rebuilds_pristine(self):
        stats = EdgeStats()
        stats.peer_hits += 3
        stats.reset()
        assert stats.peer_hits == 0
        assert stats.as_dict() == EdgeStats().as_dict()


class TestEmptySampleBoundaries:
    """Satellite: typed empty-input handling for stats and wave reports."""

    def test_percentile_empty_raises_typed_error(self):
        with pytest.raises(EmptySampleError):
            percentile([], 50)

    def test_typed_error_is_a_value_error(self):
        # Pre-hardening callers guarded with ValueError; they must keep
        # working.
        with pytest.raises(ValueError):
            percentile((), 99)

    def test_percentile_singleton_and_pair(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0
        assert percentile([1.0, 2.0], 50) == 1.0
        assert percentile([1.0, 2.0], 51) == 2.0

    def test_percentile_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_wave_report_uses_sentinel(self):
        report = WaveReport(
            concurrency=4,
            latencies_s=(),
            makespan_s=0.0,
            egress_bytes=0,
            uplink_busy_s=0.0,
        )
        assert report.p50_s == 0.0
        assert report.p99_s == 0.0
        assert report.mean_s == 0.0
        assert report.utilization == 0.0
        assert report.as_dict()["clients"] == 0
