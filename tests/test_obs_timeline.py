"""Timeline sampler: cadence determinism, append-only series, exports."""

import pytest

from repro.common.clock import SimClock, SimScheduler
from repro.obs import (
    NULL_TIMELINE,
    NullTimelineSampler,
    TimelineSampler,
    TimelineStats,
    chrome_counter_events,
    chrome_trace,
    dump_json,
)


def _sampled_run(seed="timeline", period_s=0.25, jitter=0.2, horizon_s=3.0):
    """One scheduler run with a sampler and a gauge that ramps."""
    clock = SimClock()
    sampler = TimelineSampler(
        clock, period_s=period_s, jitter=jitter, seed=seed
    )
    state = {"value": 0.0}
    sampler.add_probe("ramp", lambda: state["value"])

    def worker():
        for _ in range(6):
            yield horizon_s / 6
            state["value"] += 1.0

    with SimScheduler(clock) as scheduler:
        scheduler.spawn(sampler.run, name="timeline")
        work = scheduler.spawn(worker, name="worker")
        scheduler.run_until(work)
        sampler.stop()
        scheduler.run()
    return sampler


class TestTimeSeries:
    def test_append_only_in_order(self):
        sampler = _sampled_run()
        times = sampler.series["ramp"].times()
        assert times == sorted(times)
        assert len(sampler.series["ramp"]) == sampler.stats.samples

    def test_values_track_the_probe(self):
        sampler = _sampled_run()
        values = sampler.series["ramp"].values()
        # The ramp only ever goes up; samples must too.
        assert values == sorted(values)
        assert sampler.series["ramp"].last() is not None


class TestCadence:
    def test_jittered_cadence_is_seed_deterministic(self):
        first = _sampled_run(seed="cadence")
        second = _sampled_run(seed="cadence")
        assert first.series["ramp"].points == second.series["ramp"].points
        assert dump_json(first.as_dict()) == dump_json(second.as_dict())

    def test_different_seed_different_phase(self):
        first = _sampled_run(seed="a")
        second = _sampled_run(seed="b")
        assert first.series["ramp"].times() != second.series["ramp"].times()

    def test_zero_jitter_is_exact_period(self):
        sampler = _sampled_run(jitter=0.0, period_s=0.5)
        times = sampler.series["ramp"].times()
        assert times == pytest.approx(
            [0.5 * (i + 1) for i in range(len(times))]
        )

    def test_stop_halts_future_rows(self):
        sampler = _sampled_run()
        count = sampler.stats.samples
        sampler.sample()  # manual sample still works...
        assert sampler.stats.samples == count + 1
        # ...but the generator exits on its next wake (already drained).

    def test_validation(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            TimelineSampler(clock, period_s=0.0)
        with pytest.raises(ValueError):
            TimelineSampler(clock, jitter=1.0)
        sampler = TimelineSampler(clock)
        sampler.add_probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.add_probe("x", lambda: 1.0)


class TestNullSampler:
    def test_null_is_detached_and_processless(self):
        assert NULL_TIMELINE.attached is False
        assert TimelineSampler(SimClock()).attached is True
        # Detached means no process: the null object has no run().
        assert not hasattr(NullTimelineSampler, "run")

    def test_null_ops_are_free_noops(self):
        NULL_TIMELINE.sample()
        NULL_TIMELINE.record("x", 1.0, 2.0)
        NULL_TIMELINE.stop()


class TestEvents:
    def test_record_lands_in_named_series(self):
        clock = SimClock()
        sampler = TimelineSampler(clock)
        sampler.record("ready_s", 1.5, 0.25)
        sampler.record("ready_s", 2.0, 0.75)
        assert sampler.series["ready_s"].as_list() == [[1.5, 0.25], [2.0, 0.75]]
        assert sampler.stats.events == 2

    def test_stats_group_resets_with_registry_semantics(self):
        stats = TimelineStats()
        stats.samples = 3
        stats.reset()
        assert stats.metrics() == {"samples": 0, "points": 0, "events": 0}


class TestExport:
    def test_chrome_counter_events_are_sorted_and_typed(self):
        sampler = _sampled_run()
        sampler.record("ready_s", 0.5, 1.0)
        events = chrome_counter_events(sampler)
        assert events
        assert {event["ph"] for event in events} == {"C"}
        names = [event["name"] for event in events]
        assert names == sorted(names)
        assert all(event["tid"] == 0 for event in events)

    def test_chrome_trace_merges_counter_tracks(self):
        clock = SimClock()
        tracer = clock.attach_tracer()
        with clock.span("work"):
            clock.advance(1.0, "work")
        sampler = TimelineSampler(clock)
        sampler.record("ready_s", 0.5, 1.0)
        merged = chrome_trace(tracer, sampler)
        assert any(event.get("ph") == "C" for event in merged["traceEvents"])
        without = chrome_trace(tracer)
        assert not any(
            event.get("ph") == "C" for event in without["traceEvents"]
        )

    def test_as_dict_is_canonical_json_stable(self):
        sampler = _sampled_run()
        assert dump_json(sampler.as_dict()) == dump_json(sampler.as_dict())
