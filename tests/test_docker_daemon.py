"""Daemon: pull, run, commit, push, destroy — the §II-C deployment flow."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import NotFoundError, ReproError
from repro.docker.builder import ImageBuilder
from repro.docker.container import ContainerState
from repro.docker.daemon import DockerDaemon
from repro.docker.registry import DockerRegistry
from repro.net.link import Link
from repro.net.transport import RpcTransport


@pytest.fixture
def env():
    clock = SimClock()
    link = Link(clock, bandwidth_mbps=904)
    transport = RpcTransport(link)
    registry = DockerRegistry()
    transport.bind(registry.endpoint())
    base = ImageBuilder("debian", "v1").add_file("/bin/sh", b"sh" * 500).build()
    app = (
        ImageBuilder("nginx", "v1", base=base)
        .add_file("/etc/nginx.conf", b"conf")
        .build()
    )
    registry.push_image(base)
    registry.push_image(app)
    daemon = DockerDaemon(clock, transport)
    return clock, link, registry, daemon


class TestPull:
    def test_pull_downloads_all_layers(self, env):
        clock, link, _, daemon = env
        report = daemon.pull("nginx:v1")
        assert report.layers_downloaded == 2
        assert report.layers_reused == 0
        assert report.bytes_downloaded > 0
        assert report.duration_s > 0
        assert daemon.has_image("nginx:v1")

    def test_pull_reuses_local_layers(self, env):
        _, _, _, daemon = env
        daemon.pull("debian:v1")
        report = daemon.pull("nginx:v1")
        assert report.layers_reused == 1
        assert report.layers_downloaded == 1

    def test_repeat_pull_is_noop(self, env):
        _, link, _, daemon = env
        daemon.pull("nginx:v1")
        bytes_before = link.log.total_bytes
        report = daemon.pull("nginx:v1")
        assert report.already_local
        assert link.log.total_bytes == bytes_before

    def test_pull_missing_image_raises(self, env):
        _, _, _, daemon = env
        with pytest.raises(NotFoundError):
            daemon.pull("ghost:v1")

    def test_pull_advances_clock_with_bandwidth(self, env):
        clock, _, _, daemon = env
        daemon.pull("nginx:v1")
        assert clock.now > 0


class TestRun:
    def test_run_provides_rootfs(self, env):
        _, _, _, daemon = env
        daemon.pull("nginx:v1")
        container = daemon.run("nginx:v1")
        assert container.state is ContainerState.RUNNING
        assert container.mount.read_bytes("/etc/nginx.conf") == b"conf"
        assert container.mount.read_bytes("/bin/sh") == b"sh" * 500

    def test_run_unpulled_image_fails(self, env):
        _, _, _, daemon = env
        with pytest.raises(NotFoundError):
            daemon.run("nginx:v1")

    def test_container_writes_stay_in_writable_layer(self, env):
        _, _, _, daemon = env
        daemon.pull("nginx:v1")
        first = daemon.run("nginx:v1")
        first.mount.write_file("/tmp/x", b"private", parents=True)
        second = daemon.run("nginx:v1")
        assert not second.mount.exists("/tmp/x")

    def test_destroy_container(self, env):
        clock, _, _, daemon = env
        daemon.pull("nginx:v1")
        container = daemon.run("nginx:v1")
        before = clock.now
        teardown = daemon.destroy_container(container)
        assert teardown > 0
        assert clock.now == pytest.approx(before + teardown)
        assert container.state is ContainerState.DELETED
        assert container not in daemon.containers()

    def test_lifecycle_violations(self, env):
        _, _, _, daemon = env
        daemon.pull("nginx:v1")
        container = daemon.run("nginx:v1")
        with pytest.raises(ReproError):
            container.start()
        with pytest.raises(ReproError):
            container.delete()


class TestCommitPush:
    def test_commit_adds_layer_with_changes(self, env):
        _, _, _, daemon = env
        daemon.pull("nginx:v1")
        container = daemon.run("nginx:v1")
        container.mount.write_file("/etc/extra", b"extra")
        image = daemon.commit(container, "nginx", "custom")
        assert len(image.layers) == 3
        assert daemon.has_image("nginx:custom")
        assert image.flatten().read_bytes("/etc/extra") == b"extra"

    def test_push_only_sends_new_layers(self, env):
        _, link, registry, daemon = env
        daemon.pull("nginx:v1")
        container = daemon.run("nginx:v1")
        container.mount.write_file("/etc/extra", b"extra")
        daemon.commit(container, "nginx", "custom")
        uploaded = daemon.push("nginx:custom")
        assert uploaded == 1  # only the commit layer
        assert registry.has_manifest("nginx:custom")

    def test_commit_with_deletion_carries_whiteout(self, env):
        _, _, registry, daemon = env
        daemon.pull("nginx:v1")
        container = daemon.run("nginx:v1")
        container.mount.remove("/etc/nginx.conf")
        image = daemon.commit(container, "nginx", "slim")
        assert not image.flatten().exists("/etc/nginx.conf")

    def test_remove_image_keeps_layers(self, env):
        _, _, _, daemon = env
        daemon.pull("nginx:v1")
        daemon.remove_image("nginx:v1")
        assert not daemon.has_image("nginx:v1")
        # Layers stay locally available for reuse.
        report = daemon.pull("nginx:v1")
        assert report.layers_downloaded == 0
        assert report.layers_reused == 2
