"""Reflection over registered testbed metrics groups.

Every group a testbed registers (``rpc``, ``pool``, ``journal``, ``ha``,
``edge``, ``faas``, ``chunk``, ``timeline``, …) must survive a *double*
``reset()`` — reset is idempotent, never destructive — and must snapshot
to exactly the same key set after reset as before: resetting zeroes
values, it never changes the schema a dashboard scrapes.
"""

import pytest

from repro.bench.environment import (
    make_edge_testbed,
    make_faas_testbed,
    make_ha_testbed,
    make_testbed,
    make_timeline_sampler,
)

MAKERS = {
    "base": make_testbed,
    "ha": make_ha_testbed,
    "edge": make_edge_testbed,
    "faas": make_faas_testbed,
}

#: Group keys that must be present somewhere across the testbed matrix.
REQUIRED_GROUPS = {
    "rpc", "pool", "journal", "chunk", "timeline", "ha", "edge", "faas",
}


def _group_names(testbed):
    return {key.partition("{")[0] for key in testbed.metrics.groups()}


@pytest.fixture(params=sorted(MAKERS))
def testbed(request):
    return MAKERS[request.param]()


class TestGroupMatrix:
    def test_required_groups_all_covered_by_the_matrix(self):
        seen = set()
        for maker in MAKERS.values():
            seen |= _group_names(maker())
        assert REQUIRED_GROUPS <= seen

    def test_timeline_group_registered_on_every_testbed(self, testbed):
        assert "timeline" in _group_names(testbed)


class TestResetDiscipline:
    def _dirty(self, testbed):
        """Put nonzero numbers in the groups we can reach directly."""
        testbed.gear_driver.pool.stats.hits += 3
        testbed.gear_driver.chunk_stats.chunks_fetched += 2
        testbed.timeline_stats.samples += 5
        testbed.timeline_stats.points += 25
        sampler = make_timeline_sampler(testbed)
        sampler.sample()

    def test_double_reset_is_idempotent(self, testbed):
        self._dirty(testbed)
        testbed.metrics.reset()
        first = testbed.metrics.snapshot()
        testbed.metrics.reset()
        second = testbed.metrics.snapshot()
        assert first == second

    def test_snapshot_keys_survive_reset(self, testbed):
        self._dirty(testbed)
        before = set(testbed.metrics.snapshot())
        testbed.metrics.reset()
        testbed.metrics.reset()
        after = set(testbed.metrics.snapshot())
        assert before == after

    def test_reset_zeroes_timeline_accounting(self, testbed):
        self._dirty(testbed)
        assert testbed.timeline_stats.samples > 0
        testbed.metrics.reset()
        assert testbed.timeline_stats.metrics() == {
            "samples": 0, "points": 0, "events": 0,
        }

    def test_fresh_client_keeps_groups_stable(self, testbed):
        before = _group_names(testbed)
        fresh = testbed.fresh_client()
        assert _group_names(fresh) == before
        # The shared timeline accounting rides along to the new client.
        assert fresh.timeline_stats is testbed.timeline_stats
