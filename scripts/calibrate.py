"""Calibration harness: prints paper-vs-measured for the headline numbers.

Not part of the library; used during development to tune the corpus
profiles and cost constants.  Usage: python scripts/calibrate.py [fast]
"""

import sys
import time

from repro.analysis import compute_dedup_table, category_redundancy
from repro.bench.environment import make_testbed, publish_images
from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.storage import compare_storage, compare_storage_by_series, category_savings
from repro.workloads.corpus import CorpusBuilder, CorpusConfig
from repro.workloads.series import CATEGORIES, SERIES

FAST = len(sys.argv) > 1 and sys.argv[1] == "fast"


def main():
    t0 = time.time()
    config = CorpusConfig()
    corpus = CorpusBuilder(config).build()
    print(f"[{time.time()-t0:6.1f}s] corpus: {corpus}")

    # ---- Table II ----
    table = compute_dedup_table(corpus.docker_images())
    print(f"[{time.time()-t0:6.1f}s] Table II")
    paper = {"No": (370, 971), "Layer-level": (98, 5670),
             "File-level": (47, 639585), "Chunk-level": (43, 10478675)}
    for name, bytes_, objs in table.rows():
        pb, po = paper[name]
        print(f"  {name:<12} {bytes_/1e9:7.1f} GB (paper {pb:4d})   "
              f"{objs:9d} obj (paper {po})")
    print(f"  reductions: {({k: round(v,3) for k,v in table.reduction_vs_none().items()})}"
          f" (paper layer .74 file .87 chunk .88)")
    print(f"  chunk blowup {table.chunk_object_blowup:.1f}x (paper 16.4x)")

    # ---- Fig 2 ----
    red = category_redundancy(corpus)
    print(f"[{time.time()-t0:6.1f}s] Fig 2 redundancy "
          f"(paper: DB .560 Platform .574 avg .399)")
    for k, v in red.items():
        print(f"  {k:<22} {v:.3f}")

    # ---- Fig 7a/b ----
    by_series = compare_storage_by_series(corpus.by_series)
    cats = category_savings(by_series, {s.name: s.category for s in SERIES})
    paper7a = {"Linux Distro": .205, "Language": .328, "Database": .522,
               "Web Component": .609, "Application Platform": .586, "Others": .467}
    print(f"[{time.time()-t0:6.1f}s] Fig 7a per-category saving")
    for c in CATEGORIES:
        print(f"  {c:<22} {cats.get(c, float('nan')):.3f} (paper {paper7a[c]:.3f})")
    whole = compare_storage("top-50", corpus.images)
    print(f"  Fig 7b whole-registry saving {whole.saving_fraction:.3f} (paper .537), "
          f"index share {whole.index_share:.4f} (paper .011), "
          f"docker {whole.docker_bytes/1e9:.1f} GB gear {whole.gear_bytes/1e9:.1f} GB")

    # ---- Fig 8 / Fig 9 (sampled deployments) ----
    sample = [imgs[0] for imgs in corpus.by_series.values()][:: (3 if FAST else 1)]
    sample_all = []
    for name, imgs in corpus.by_series.items():
        sample_all.extend(imgs[:3])
    testbed = make_testbed()
    publish_images(testbed, sample_all, convert=True)

    docker_bytes = gear_nc_bytes = gear_c_bytes = 0
    docker_t = gear_nc_t = gear_c_t = 0.0
    n = 0
    for generated in sample_all:
        client = testbed.fresh_client()
        r = deploy_with_docker(client, generated)
        docker_bytes += r.network_bytes; docker_t += r.total_s
        client2 = testbed.fresh_client()
        r2 = deploy_with_gear(client2, generated, clear_cache=True)
        gear_nc_bytes += r2.network_bytes; gear_nc_t += r2.total_s
        n += 1
    # cached scenario: shared driver across the sweep
    client3 = testbed.fresh_client()
    for generated in sample_all:
        r3 = deploy_with_gear(client3, generated)
        gear_c_bytes += r3.network_bytes; gear_c_t += r3.total_s
    print(f"[{time.time()-t0:6.1f}s] Fig 8 bytes: gear-nc/docker "
          f"{gear_nc_bytes/docker_bytes:.3f} (paper .291), "
          f"gear-cache/docker {gear_c_bytes/docker_bytes:.3f} (paper .162)")
    print(f"  Fig 9 @904Mbps speedups: gear-nc {docker_t/gear_nc_t:.2f}x (paper 1.4), "
          f"gear-cache {docker_t/gear_c_t:.2f}x (paper 1.64); "
          f"docker avg {docker_t/n:.2f}s gear-nc avg {gear_nc_t/n:.2f}s")


if __name__ == "__main__":
    main()
