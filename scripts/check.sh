#!/usr/bin/env sh
# Repo health gate: tier-1 tests, warnings-as-errors on the fault-injection
# suite, and a full bytecode compile of the source tree.
#
# Usage: sh scripts/check.sh   (from the repo root)
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== fault-injection suite under -W error =="
python -W error -m pytest tests/test_net_faults.py -q

echo "== compileall src =="
python -m compileall -q src

echo "all checks passed"
