#!/usr/bin/env sh
# Repo health gate: tier-1 tests, warnings-as-errors on the fault-injection,
# scheduler, journal/recovery, HA, telemetry, edge, FaaS, and chunk
# read-path suites, fleet-contention / crash / HA / trace / edge / FaaS /
# chunk determinism gates, the checked-in perf-trajectory artifacts, and a
# full bytecode compile of the source tree.
#
# Usage: sh scripts/check.sh   (from the repo root)
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== fault-injection suite under -W error =="
python -W error -m pytest tests/test_net_faults.py -q

echo "== scheduler suite under -W error =="
python -W error -m pytest tests/test_sim_scheduler.py -q

echo "== journal/recovery suites under -W error =="
python -W error -m pytest tests/test_gear_journal.py tests/test_gear_recovery.py -q

echo "== HA registry suites under -W error =="
python -W error -m pytest tests/test_net_ha.py tests/test_gear_replication.py -q

echo "== telemetry suites under -W error =="
python -W error -m pytest tests/test_obs_trace.py tests/test_obs_metrics.py \
    tests/test_obs_timeline.py tests/test_obs_slo.py \
    tests/test_metrics_groups.py tests/test_readiness_golden.py -q

echo "== edge/P2P suites under -W error =="
python -W error -m pytest tests/test_net_edge.py tests/test_gear_gc.py -q

echo "== FaaS tier suites under -W error =="
python -W error -m pytest tests/test_net_faas.py tests/test_workloads_schedule.py \
    tests/test_common_stats.py -q

echo "== chunk read-path suites under -W error =="
python -W error -m pytest tests/test_gear_bigfile.py tests/test_gear_chunks.py -q

echo "== fleet-contention determinism gate =="
# The concurrent simulation must be replayable: two identical sweeps
# have to emit byte-identical JSON reports.
fleet_tmp="$(mktemp -d)"
trap 'rm -rf "$fleet_tmp"' EXIT
fleet_cmd="python -m repro.cli deploy --series nginx --versions 2 \
    --scale 0.2 --clients 8 --bandwidth 100 --json"
$fleet_cmd > "$fleet_tmp/run1.json"
$fleet_cmd > "$fleet_tmp/run2.json"
diff "$fleet_tmp/run1.json" "$fleet_tmp/run2.json"
echo "fleet reports identical across runs"

echo "== crash-sweep determinism gate =="
# Crash injection, fsck, and resume must be replayable too: for each
# seed, two identical sweeps have to emit byte-identical JSON reports
# (and exit 0, which certifies resume equivalence at every crash point).
for crash_seed in 11 42; do
    crash_cmd="python -m repro.cli crash --series nginx --versions 1 \
        --scale 0.2 --target nginx --crash-seed $crash_seed --json"
    $crash_cmd > "$fleet_tmp/crash-$crash_seed-run1.json"
    $crash_cmd > "$fleet_tmp/crash-$crash_seed-run2.json"
    diff "$fleet_tmp/crash-$crash_seed-run1.json" \
        "$fleet_tmp/crash-$crash_seed-run2.json"
done
echo "crash sweeps identical across runs for both seeds"

echo "== HA determinism gate =="
# Failover, hedging, backoff jitter, and load shedding all draw from
# seeded streams: for each seed, two identical HA sweeps have to emit
# byte-identical JSON reports (and exit 0, which certifies that no
# deployment fell back to degraded mode while a replica quorum was
# healthy).  The p2c run exercises the seeded selection stream too.
for ha_seed in 11 42; do
    ha_cmd="python -m repro.cli ha --series nginx --versions 2 \
        --scale 0.2 --clients 6 --concurrency 3 --strategy p2c \
        --ha-seed $ha_seed --json"
    $ha_cmd > "$fleet_tmp/ha-$ha_seed-run1.json"
    $ha_cmd > "$fleet_tmp/ha-$ha_seed-run2.json"
    diff "$fleet_tmp/ha-$ha_seed-run1.json" \
        "$fleet_tmp/ha-$ha_seed-run2.json"
done
echo "HA sweeps identical across runs for both seeds"

echo "== edge determinism gate =="
# Peer selection, gossip jitter, churn, and the mid-serve crash all draw
# from seeded streams: for each seed, two identical churn+byzantine
# sweeps have to emit byte-identical JSON reports (and exit 0, which
# certifies zero degraded deploys, zero integrity violations, and the
# corrupt peer blacklisted).
for edge_seed in 11 42; do
    edge_cmd="python -m repro.cli edge --series nginx --versions 2 \
        --scale 0.2 --target nginx --clients 8 \
        --scenario churn+byzantine --edge-seed $edge_seed --json"
    $edge_cmd > "$fleet_tmp/edge-$edge_seed-run1.json"
    $edge_cmd > "$fleet_tmp/edge-$edge_seed-run2.json"
    diff "$fleet_tmp/edge-$edge_seed-run1.json" \
        "$fleet_tmp/edge-$edge_seed-run2.json"
done
echo "edge sweeps identical across runs for both seeds"

echo "== FaaS spike determinism gate =="
# Arrival schedules, placement, coalescing order, breaker state, and
# backoff jitter all draw from seeded streams: for each seed, two
# identical spike+outage sweeps have to emit byte-identical JSON reports
# (and exit 0, which certifies zero failed invocations, zero duplicate
# upstream fetches, zero integrity violations, and cold-started
# filesystems byte-identical to the fault-free registry-only control).
for faas_seed in 11 42; do
    faas_cmd="python -m repro.cli faas --series nginx --versions 2 \
        --scale 0.2 --functions 10 --duration 8 --rate 4 --nodes 4 \
        --spike-start 3 --spike-len 3 --outage-start 4 --outage-len 1.5 \
        --scenario spike+outage --faas-seed $faas_seed --json"
    $faas_cmd > "$fleet_tmp/faas-$faas_seed-run1.json"
    $faas_cmd > "$fleet_tmp/faas-$faas_seed-run2.json"
    diff "$fleet_tmp/faas-$faas_seed-run1.json" \
        "$fleet_tmp/faas-$faas_seed-run2.json"
done
echo "FaaS sweeps identical across runs for both seeds"

echo "== chunk-sweep determinism gate =="
# The chunk-granular read path draws faults, retry jitter, and the
# mid-chunk crash from seeded streams: for each seed, two identical
# sweeps (clean / chunk-faults / crash / byzantine) have to emit
# byte-identical JSON reports (and exit 0, which certifies every run
# ended byte-identical to the whole-file control with zero poisoned
# commits, zero duplicate chunk fetches, and zero re-fetched salvaged
# chunks after crash recovery).
for chunk_seed in 11 42; do
    chunk_cmd="python -m repro.cli chunks --clients 8 --big-mib 4 \
        --chunk-seed $chunk_seed --json"
    $chunk_cmd > "$fleet_tmp/chunks-$chunk_seed-run1.json"
    $chunk_cmd > "$fleet_tmp/chunks-$chunk_seed-run2.json"
    diff "$fleet_tmp/chunks-$chunk_seed-run1.json" \
        "$fleet_tmp/chunks-$chunk_seed-run2.json"
done
echo "chunk sweeps identical across runs for both seeds"

echo "== readiness/SLO determinism gate =="
# The SLO command already double-runs every scenario internally (exit 1
# on any violated objective, any burn-rate breach, or any intra-run
# byte drift); the gate additionally double-runs the whole command per
# seed under -W error, so the full report — sampled timelines included
# — must be byte-identical across processes too.
for slo_seed in 11 42; do
    slo_cmd="python -W error -m repro.cli slo --series nginx --versions 2 \
        --scale 0.2 --target nginx --clients 6 --bandwidth 200 \
        --slo-seed $slo_seed --json"
    $slo_cmd > "$fleet_tmp/slo-$slo_seed-run1.json"
    $slo_cmd > "$fleet_tmp/slo-$slo_seed-run2.json"
    diff "$fleet_tmp/slo-$slo_seed-run1.json" \
        "$fleet_tmp/slo-$slo_seed-run2.json"
done
echo "SLO reports identical across runs for both seeds"

echo "== edge single-tier equivalence gate =="
# With no peers and no churn the edge tier must cost exactly nothing:
# the run has to be byte- and virtual-time-identical to the single-tier
# testbed (exit 1 on any divergence).
python -m repro.cli edge --series nginx --versions 2 --scale 0.2 \
    --target nginx --equivalence --json > "$fleet_tmp/edge-equiv.json"
echo "peer-less edge run identical to single-tier testbed"

echo "== simulator speed gate =="
# The perf command exits 1 on cross-mode or double-run drift of the
# deterministic fields; the floor below additionally catches a gross
# core regression (the recorded pre-refactor baseline was ~17k events/s;
# the refactored generator mode runs >150k, so 60k trips only on a real
# slowdown, not machine noise).
python -m repro.cli perf --scale 0.2 --json > "$fleet_tmp/perf.json"
python - "$fleet_tmp/perf.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["ok"], "perf determinism gates failed"
from repro.bench.speed import run_microflows
events_per_s = run_microflows(mode="gen").events_per_s
floor = 60_000.0
if events_per_s < floor:
    sys.exit(f"simulator core regressed: {events_per_s:,.0f} events/s "
             f"< {floor:,.0f} floor")
print(f"gen-mode microflows: {events_per_s:,.0f} events/s (floor 60,000)")
EOF
echo "simulator speed gate passed"

echo "== perf-trajectory artifacts =="
# Regenerate the checked-in BENCH_ext_*.json artifacts; a PR that moves
# any simulated number must commit the refreshed artifacts with it.
python benchmarks/artifacts.py
if command -v git >/dev/null 2>&1 && git rev-parse --git-dir >/dev/null 2>&1
then
    git diff --exit-code -- benchmarks/artifacts \
        || { echo "BENCH_ext artifacts drifted: commit the refreshed \
benchmarks/artifacts/*.json" >&2; exit 1; }
fi
echo "perf-trajectory artifacts fresh"

echo "== trace-determinism gate =="
# The telemetry plane must not disturb determinism, and its own exports
# must be replayable: for each seed, two identical traced deployments
# have to emit byte-identical Chrome-trace and metrics JSON files (and
# exit 0, which certifies the span tree covers >= 95% of the deploy
# makespan and the per-phase totals sum to the deploy total).
for trace_seed in 11 42; do
    trace_cmd="python -m repro.cli trace --series nginx --versions 1 \
        --scale 0.2 --target nginx --seed $trace_seed --json"
    $trace_cmd --out-dir "$fleet_tmp/trace-$trace_seed-run1" \
        > "$fleet_tmp/trace-$trace_seed-run1.json"
    $trace_cmd --out-dir "$fleet_tmp/trace-$trace_seed-run2" \
        > "$fleet_tmp/trace-$trace_seed-run2.json"
    diff "$fleet_tmp/trace-$trace_seed-run1.json" \
        "$fleet_tmp/trace-$trace_seed-run2.json"
    diff "$fleet_tmp/trace-$trace_seed-run1/trace.json" \
        "$fleet_tmp/trace-$trace_seed-run2/trace.json"
    diff "$fleet_tmp/trace-$trace_seed-run1/metrics.json" \
        "$fleet_tmp/trace-$trace_seed-run2/metrics.json"
done
echo "trace exports identical across runs for both seeds"

echo "== compileall src =="
python -m compileall -q src

echo "all checks passed"
