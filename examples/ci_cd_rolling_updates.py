#!/usr/bin/env python
"""Scenario: CI/CD rolling updates of one service across many versions.

§II-D motivates on-demand images with CI/CD and DevOps: "container
versions can be updated frequently, and old images have to be replaced
quickly by new images."  This example rolls a Tomcat-like service through
ten releases on a single node and tracks, per release, how much data each
system moves and how long the deployment takes — reproducing the Fig. 10
dynamic in miniature, including the Slacker baseline.

Run:  python examples/ci_cd_rolling_updates.py
"""

from repro.baselines.slacker import SlackerDriver
from repro.bench.deploy import (
    deploy_with_docker,
    deploy_with_gear,
    deploy_with_slacker,
)
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.workloads.corpus import CorpusBuilder, CorpusConfig

RELEASES = 10


def main() -> None:
    print("generating a tomcat release chain…")
    corpus = CorpusBuilder(
        CorpusConfig(
            seed=7,
            file_scale=0.5,
            size_scale=0.5,
            series_names=("tomcat",),
            versions_cap=RELEASES,
        )
    ).build()
    releases = corpus.by_series["tomcat"]

    testbed = make_testbed(bandwidth_mbps=100)
    publish_images(testbed, releases, convert=True)

    docker_client = testbed.fresh_client()
    gear_client = testbed.fresh_client()
    slacker = SlackerDriver(testbed.clock, testbed.link)

    rows = []
    for generated in releases:
        docker = deploy_with_docker(docker_client, generated)
        gear = deploy_with_gear(gear_client, generated)
        slk = deploy_with_slacker(slacker, testbed, generated)
        rows.append(
            (
                generated.tag,
                f"{docker.total_s:6.2f}s / {docker.network_bytes / 1e6:6.1f}MB",
                f"{slk.total_s:6.2f}s / {slk.network_bytes / 1e6:6.1f}MB",
                f"{gear.total_s:6.2f}s / {gear.network_bytes / 1e6:6.1f}MB "
                f"({gear.cache_hits} cache hits)",
            )
        )

    print("\nrolling updates @100 Mbps — time / bytes per release")
    print(format_table(["Release", "Docker", "Slacker", "Gear"], rows))
    print(
        "\nDocker re-downloads every changed layer; Slacker re-fetches "
        "blocks for every release (no sharing); Gear downloads only the "
        "files that actually changed since the previous release."
    )


if __name__ == "__main__":
    main()
