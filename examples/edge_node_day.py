#!/usr/bin/env python
"""Scenario: a day of mixed deployments on a bandwidth-limited edge site.

Edge/IoT nodes redeploy a heavy-tailed mix of images all day (§V-E1
names this the regime where Gear shines).  The fleet now sits behind the
multi-tier topology from :mod:`repro.net.edge`: a handful of nodes share
one site LAN, peer-serve Gear files they already hold, and only fall
back to the registry across the thin WAN uplink.

We replay the same zipf-popular deployment stream twice — once through
the edge tier, once registry-only — and check the two promises the tier
makes: every container filesystem is byte-identical to the registry-only
run (peers can never change *what* is deployed, only *where the bytes
came from*), and a meaningful share of fetches never touches the WAN.

Run:  PYTHONPATH=src python examples/edge_node_day.py
"""

from repro.bench.deploy import container_fs_digest, deploy_with_gear
from repro.bench.environment import (
    make_edge_testbed,
    make_testbed,
    publish_images,
)
from repro.bench.reporting import format_table
from repro.common.stats import percentile
from repro.workloads.corpus import CorpusBuilder, CorpusConfig
from repro.workloads.schedule import ScheduleBuilder

EVENTS = 24
NODES = 4
WAN_MBPS = 20
LAN_MBPS = 200


def _build_corpus():
    return CorpusBuilder(
        CorpusConfig(
            seed=7,
            file_scale=0.3,
            size_scale=0.3,
            series_names=("nginx", "redis", "python"),
            versions_cap=4,
        )
    ).build()


def _replay(root, nodes, schedule, *, gossip=None):
    """Deploy the stream round-robin across nodes on one topology.

    Returns per-event latencies, per-event container digests, and the
    registry (WAN) traffic the day cost.
    """
    latencies = []
    digests = []
    wan_before = root.link.log.total_bytes
    for index, event in enumerate(schedule):
        node = nodes[index % len(nodes)]
        latencies.append(deploy_with_gear(node, event.image).total_s)
        digests.append(container_fs_digest(node.gear_driver.containers()[-1]))
        if gossip is not None:
            gossip()
    return latencies, digests, root.link.log.total_bytes - wan_before


def main() -> None:
    print("generating the site's image mix…")
    corpus = _build_corpus()
    schedule = ScheduleBuilder(corpus).popularity_stream(EVENTS, skew=1.1)
    repeats = sum(1 for event in schedule if event.is_repeat)
    print(
        f"schedule: {EVENTS} deployments across {NODES} nodes, "
        f"{repeats} repeats of hot images"
    )

    print("replaying registry-only (every byte over the WAN)…")
    flat_root = make_testbed(bandwidth_mbps=WAN_MBPS)
    publish_images(flat_root, corpus.images, convert=True)
    flat_nodes = [flat_root.fresh_client() for _ in range(NODES)]
    flat_lat, flat_digests, flat_wan = _replay(
        flat_root, flat_nodes, schedule
    )

    print("replaying through the edge tier (peers serve site neighbors)…")
    edge_root = make_edge_testbed(
        bandwidth_mbps=WAN_MBPS, lan_mbps=LAN_MBPS, seed="edge-day"
    )
    publish_images(edge_root, corpus.images, convert=True)
    edge_nodes = [edge_root.edge.client() for _ in range(NODES)]
    edge_lat, edge_digests, edge_wan = _replay(
        edge_root, edge_nodes, schedule, gossip=edge_root.edge.gossip
    )

    # Promise 1: the tier never changes what gets deployed — every
    # container filesystem is byte-identical to the registry-only run.
    assert edge_digests == flat_digests, "edge run diverged from registry-only"
    # Promise 2: the site actually offloaded the WAN.
    stats = edge_root.edge.stats
    assert stats.peer_hits > 0, "expected a nonzero peer-hit rate"
    assert not edge_root.edge.audit_integrity()

    rows = []
    for label, latencies, wan in (
        ("registry-only", flat_lat, flat_wan),
        ("edge tier", edge_lat, edge_wan),
    ):
        rows.append(
            (
                label,
                f"{sum(latencies) / len(latencies):.2f}",
                f"{percentile(latencies, 50):.2f}",
                f"{percentile(latencies, 95):.2f}",
                f"{wan / 1e6:.0f}",
            )
        )
    print(f"\ndeployment latency over the day @ {WAN_MBPS} Mbps WAN (s)")
    print(
        format_table(
            ["Topology", "mean", "p50", "p95", "WAN traffic (MB)"], rows
        )
    )
    hit_rate = stats.peer_hits / max(1, stats.fetches)
    print(
        f"\nall {EVENTS} container filesystems byte-identical to the "
        f"registry-only run; {stats.peer_hits} of {stats.fetches} fetches "
        f"({100 * hit_rate:.0f}%) served by site peers, saving "
        f"{100 * (1 - edge_wan / flat_wan):.0f}% of WAN traffic."
    )


if __name__ == "__main__":
    main()
