#!/usr/bin/env python
"""Scenario: a day of mixed deployments on one bandwidth-limited edge node.

Edge/IoT nodes redeploy a heavy-tailed mix of images all day (§V-E1
names this the regime where Gear shines).  We generate a zipf-popular
deployment stream with rolling version updates, replay it on one node at
20 Mbps under Docker and under Gear, and report the latency distribution
and total traffic.

Run:  python examples/edge_node_day.py
"""

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.workloads.corpus import CorpusBuilder, CorpusConfig
from repro.workloads.schedule import ScheduleBuilder

EVENTS = 30
BANDWIDTH = 20


def percentile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def main() -> None:
    print("generating the node's image mix…")
    corpus = CorpusBuilder(
        CorpusConfig(
            seed=7,
            file_scale=0.4,
            size_scale=0.4,
            series_names=("nginx", "redis", "python", "haproxy", "telegraf"),
            versions_cap=6,
        )
    ).build()
    schedule = ScheduleBuilder(corpus).popularity_stream(EVENTS, skew=1.1)
    repeats = sum(1 for event in schedule if event.is_repeat)
    print(f"schedule: {EVENTS} deployments, {repeats} repeats of hot images")

    results = {}
    for system in ("docker", "gear"):
        testbed = make_testbed(bandwidth_mbps=BANDWIDTH)
        publish_images(testbed, corpus.images, convert=True)
        latencies = []
        bytes_before = testbed.link.log.total_bytes
        for event in schedule:
            if system == "docker":
                latencies.append(
                    deploy_with_docker(testbed, event.image).total_s
                )
            else:
                latencies.append(
                    deploy_with_gear(testbed, event.image).total_s
                )
        results[system] = (
            latencies,
            testbed.link.log.total_bytes - bytes_before,
        )

    rows = []
    for system, (latencies, traffic) in results.items():
        rows.append(
            (
                system,
                f"{sum(latencies) / len(latencies):.2f}",
                f"{percentile(latencies, 0.5):.2f}",
                f"{percentile(latencies, 0.95):.2f}",
                f"{traffic / 1e6:.0f}",
            )
        )
    print(f"\ndeployment latency over the day @ {BANDWIDTH} Mbps (s)")
    print(
        format_table(
            ["System", "mean", "p50", "p95", "traffic (MB)"], rows
        )
    )
    docker_traffic = results["docker"][1]
    gear_traffic = results["gear"][1]
    print(
        f"\nGear moved {100 * (1 - gear_traffic / docker_traffic):.0f}% "
        f"less data: repeats hit the local image/index, and new versions "
        f"fetch only changed files."
    )


if __name__ == "__main__":
    main()
