#!/usr/bin/env python
"""Scenario: a registry operator sizing storage before adopting Gear.

An operator hosting a private registry wants to know, before converting
anything: how much space does each dedup granularity save (Table II),
which image families benefit most (Fig. 7a), and what the conversion
backlog costs (Fig. 6)?  This example runs that capacity-planning study
on a representative slice of the catalog.

Run:  python examples/registry_operator_report.py
"""

from repro.analysis import compute_dedup_table
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table, gb, pct
from repro.bench.storage import compare_storage, compare_storage_by_series
from repro.workloads.corpus import CorpusBuilder, CorpusConfig

FLEET = ("debian", "python", "mysql", "nginx", "tomcat", "wordpress")


def main() -> None:
    print("generating the operator's image fleet…")
    corpus = CorpusBuilder(
        CorpusConfig(
            seed=7,
            file_scale=0.5,
            size_scale=0.5,
            series_names=FLEET,
            versions_cap=8,
        )
    ).build()

    # -- 1. dedup-granularity study (Table II on this fleet) --------------
    table = compute_dedup_table(corpus.docker_images())
    print("\n1. what would each dedup granularity store?")
    print(
        format_table(
            ["Granularity", "Stored (GB)", "Objects"],
            [(name, gb(size), f"{objects:,}") for name, size, objects in table.rows()],
        )
    )

    # -- 2. per-series Gear saving (Fig. 7a) ------------------------------
    by_series = compare_storage_by_series(corpus.by_series)
    print("\n2. per-series saving after converting to Gear")
    print(
        format_table(
            ["Series", "Docker (GB)", "Gear (GB)", "Saving"],
            [
                (name, gb(c.docker_bytes), gb(c.gear_bytes),
                 pct(c.saving_fraction))
                for name, c in sorted(by_series.items())
            ],
        )
    )
    whole = compare_storage("fleet", corpus.images)
    print(f"whole fleet together: {pct(whole.saving_fraction)} saved "
          f"(indexes are {pct(whole.index_share)} of the Gear footprint)")

    # -- 3. conversion backlog (Fig. 6) ------------------------------------
    testbed = make_testbed()
    reports = publish_images(testbed, corpus.images, convert=True)
    total_time = sum(r.duration_s for r in reports)
    print(f"\n3. converting all {len(reports)} images would take "
          f"{total_time:.0f} virtual seconds on the registry's HDD "
          f"({total_time / len(reports):.1f} s/image), done once, offline.")
    collisions = sum(r.collisions for r in reports)
    print(f"   fingerprint collisions during conversion: {collisions}")


if __name__ == "__main__":
    main()
