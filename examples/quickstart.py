#!/usr/bin/env python
"""Quickstart: build an image, convert it to Gear, deploy it lazily.

Walks the full Gear life cycle on a hand-built nginx-like image:

1. build a layered Docker image and push it to the Docker registry;
2. convert it into a Gear image (index + content-addressed files);
3. deploy a Gear container — only the tiny index travels up front;
4. read files: each first touch faults the file in over the network;
5. deploy a second container of the same image: zero network traffic.

Run:  python examples/quickstart.py
"""

from repro import ImageBuilder, make_testbed
from repro.bench.environment import publish_images  # noqa: F401 (API tour)
from repro.common.units import format_bytes, format_duration


def main() -> None:
    # -- a two-node testbed: client <-> registries over 100 Mbps ---------
    testbed = make_testbed(bandwidth_mbps=100)

    # -- 1. build and push a layered image --------------------------------
    base = (
        ImageBuilder("debian", "buster-slim")
        .add_file("/bin/sh", b"#!shell " * 4096, mode=0o755)
        .add_file("/etc/os-release", 'PRETTY_NAME="Debian (synthetic)"')
        .build()
    )
    nginx = (
        ImageBuilder("nginx", "1.17", base=base)
        .add_file("/usr/sbin/nginx", b"\x7fELF nginx " * 65536, mode=0o755)
        .add_file("/etc/nginx/nginx.conf", "worker_processes 1;\n")
        .add_symlink("/usr/bin/nginx", "/usr/sbin/nginx")
        .with_env(PATH="/usr/sbin:/bin")
        .build()
    )
    testbed.docker_registry.push_image(base)
    testbed.docker_registry.push_image(nginx)
    print(f"pushed {nginx.reference}: {len(nginx.layers)} layers, "
          f"{format_bytes(nginx.uncompressed_size)} uncompressed")

    # -- 2. convert to a Gear image ---------------------------------------
    index, report = testbed.converter.convert("nginx:1.17")
    print(f"converted in {format_duration(report.duration_s)} (virtual): "
          f"{report.gear_files_new} gear files, "
          f"index {format_bytes(report.index_bytes)}")

    # -- 3. deploy: only the index travels --------------------------------
    container, deploy_report = testbed.gear_driver.deploy("nginx.gear:1.17")
    print(f"deployed {container.id}: pulled "
          f"{format_bytes(deploy_report.index_bytes)} in "
          f"{format_duration(deploy_report.pull_s)}")

    # -- 4. lazy faults on first access ------------------------------------
    conf = container.mount.read_bytes("/etc/nginx/nginx.conf")
    print(f"read nginx.conf ({conf.decode().strip()!r}) — "
          f"faults so far: {container.mount.fault_stats.faults}")
    binary = container.mount.read_bytes("/usr/bin/nginx")  # via symlink
    print(f"read {format_bytes(len(binary))} binary through symlink — "
          f"remote fetches: {container.mount.fault_stats.remote_fetches}, "
          f"bytes over the wire: "
          f"{format_bytes(testbed.link.log.total_bytes)}")

    # The writable layer works like any container.
    container.mount.write_file("/var/log/nginx/access.log", b"GET /\n",
                               parents=True)
    print(f"writable layer holds "
          f"{format_bytes(container.mount.upper.total_file_bytes())}")

    # -- 5. a second instance shares everything locally --------------------
    bytes_before = testbed.link.log.total_bytes
    second = testbed.gear_driver.create_container("nginx.gear:1.17")
    testbed.gear_driver.start_container(second)
    second.mount.read_bytes("/etc/nginx/nginx.conf")
    print(f"second container read config with "
          f"{testbed.link.log.total_bytes - bytes_before} new network bytes")

    print(f"\nvirtual clock at exit: {format_duration(testbed.clock.now)}")


if __name__ == "__main__":
    main()
