#!/usr/bin/env python
"""Scenario: a serverless invocation spike on bandwidth-constrained nodes.

The paper's intro motivates Gear with serverless cold-start latency —
"long cold-start latency … is mainly caused by the image downloading
process" — and with edge/IoT deployments where bandwidth is scarce
(§V-E1).  This example replays one seeded bursty invocation stream
(:meth:`~repro.workloads.schedule.ScheduleBuilder.invocation_stream`)
over a small FaaS fleet (:mod:`repro.net.faas`) at several WAN
bandwidths and compares three ways of serving the cold starts:

* **Docker**: full-image pulls, one per function image;
* **Gear (cold cache)**: the Gear chain with the shared cache tier
  disabled — every cold start pulls its files over the WAN;
* **Gear (warm cache)**: the same stream again with the shared tier
  already populated by earlier invocations — the steady state a busy
  FaaS cell actually runs in.

Run:  python examples/serverless_cold_start.py
"""

from repro.bench.deploy import deploy_with_docker
from repro.bench.environment import (
    make_faas_testbed,
    make_testbed,
    publish_images,
)
from repro.bench.reporting import format_table
from repro.net.faas import FaasPlatform
from repro.workloads.corpus import CorpusBuilder, CorpusConfig
from repro.workloads.schedule import BurstWindow, ScheduleBuilder

#: The "functions": small web/runtime images a FaaS platform would host.
FUNCTIONS = ("nginx", "python", "redis", "haproxy")
BANDWIDTHS = (904, 100, 20, 5)


def _faas_cold_p50(corpus, stream, bandwidth, *, warm_tier):
    """Cold-start p50 for the stream; optionally pre-warm the tier."""
    bed = make_faas_testbed(bandwidth_mbps=bandwidth, seed="example-faas")
    publish_images(bed, corpus.images, convert=True)
    if warm_tier:
        # A previous wave of invocations filled the shared tier; these
        # nodes are fresh (their pools are cold) but the tier is hot.
        FaasPlatform(bed, bed.faas, nodes=2, seed="warmup").run(stream)
    else:
        bed.faas.blacklisted = True  # tier disabled: registry-only
    platform = FaasPlatform(bed, bed.faas, nodes=2, seed="measure")
    report = platform.run(stream)
    assert report.failures == 0
    return report.cold_p50_s


def main() -> None:
    print("generating function images (synthetic Table I subset)…")
    corpus = CorpusBuilder(
        CorpusConfig(
            seed=7,
            file_scale=0.5,
            size_scale=0.5,
            series_names=FUNCTIONS,
            versions_cap=2,
        )
    ).build()

    # One seeded bursty arrival process, replayed at every bandwidth: a
    # steady trickle with a 6x spike in the middle (the cold-start storm).
    stream = ScheduleBuilder(corpus, seed="example-faas").invocation_stream(
        duration_s=6.0,
        rate_per_s=2.0,
        functions=len(FUNCTIONS) * 2,
        bursts=(BurstWindow(start_s=2.0, duration_s=2.0, factor=6.0),),
    )
    images = {invocation.image.reference for invocation in stream}
    print(
        f"invocation stream: {len(stream)} arrivals over 6.0 s across "
        f"{len(images)} images"
    )

    rows = []
    for bandwidth in BANDWIDTHS:
        control = make_testbed(bandwidth_mbps=bandwidth)
        publish_images(control, corpus.images, convert=True)
        docker_total = 0.0
        referenced = [g for g in corpus.images if g.reference in images]
        for generated in referenced:
            docker_total += deploy_with_docker(
                control.fresh_client(), generated
            ).total_s
        docker_mean = docker_total / len(referenced)

        cold = _faas_cold_p50(corpus, stream, bandwidth, warm_tier=False)
        warm = _faas_cold_p50(corpus, stream, bandwidth, warm_tier=True)

        rows.append(
            (
                f"{bandwidth} Mbps",
                f"{docker_mean:.2f}",
                f"{cold:.2f}",
                f"{warm:.2f}",
                f"{docker_mean / warm:.2f}x",
            )
        )

    print("\ncold-start latency p50 per invocation (s)")
    print(
        format_table(
            ["Bandwidth", "Docker", "Gear (cold cache)", "Gear (warm cache)",
             "speedup (warm)"],
            rows,
        )
    )
    print(
        "\nGear's advantage grows as bandwidth shrinks — and the shared "
        "cache tier keeps cold starts fast even when the WAN is the "
        "bottleneck (§V-E1)."
    )


if __name__ == "__main__":
    main()
