#!/usr/bin/env python
"""Scenario: serverless cold starts on a bandwidth-constrained edge node.

The paper's intro motivates Gear with serverless cold-start latency —
"long cold-start latency … is mainly caused by the image downloading
process" — and with edge/IoT deployments where bandwidth is scarce
(§V-E1).  This example deploys a burst of different function images on
one node and compares Docker, Gear without a cache, and Gear with the
shared cache warm from prior invocations, across bandwidths.

Run:  python examples/serverless_cold_start.py
"""

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.workloads.corpus import CorpusBuilder, CorpusConfig

#: The "functions": small web/runtime images a FaaS platform would host.
FUNCTIONS = ("nginx", "python", "redis", "haproxy")
BANDWIDTHS = (904, 100, 20, 5)


def main() -> None:
    print("generating function images (synthetic Table I subset)…")
    corpus = CorpusBuilder(
        CorpusConfig(
            seed=7,
            file_scale=0.5,
            size_scale=0.5,
            series_names=FUNCTIONS,
            versions_cap=2,
        )
    ).build()
    functions = [corpus.by_series[name][-1] for name in FUNCTIONS]

    rows = []
    for bandwidth in BANDWIDTHS:
        testbed = make_testbed(bandwidth_mbps=bandwidth)
        publish_images(testbed, corpus.images, convert=True)

        docker_total = 0.0
        nocache_total = 0.0
        for generated in functions:
            docker_total += deploy_with_docker(
                testbed.fresh_client(), generated
            ).total_s
            nocache_total += deploy_with_gear(
                testbed.fresh_client(), generated, clear_cache=True
            ).total_s

        # Warm node: earlier invocations populated the shared cache.
        warm_client = testbed.fresh_client()
        for generated in functions:
            deploy_with_gear(warm_client, generated)
        warm_total = 0.0
        rerun_client = testbed.fresh_client()
        rerun_client.gear_driver.pool = warm_client.gear_driver.pool
        for generated in functions:
            warm_total += deploy_with_gear(rerun_client, generated).total_s

        count = len(functions)
        rows.append(
            (
                f"{bandwidth} Mbps",
                f"{docker_total / count:.2f}",
                f"{nocache_total / count:.2f}",
                f"{warm_total / count:.2f}",
                f"{docker_total / warm_total:.2f}x",
            )
        )

    print("\naverage cold-start latency per function (s)")
    print(
        format_table(
            ["Bandwidth", "Docker", "Gear (cold cache)", "Gear (warm cache)",
             "speedup (warm)"],
            rows,
        )
    )
    print(
        "\nGear's advantage grows as bandwidth shrinks — the edge/IoT "
        "regime the paper highlights (§V-E1)."
    )


if __name__ == "__main__":
    main()
