"""Fig. 10: sequential deployment of Tomcat versions, Docker vs Slacker vs Gear.

Paper (20 Tomcat versions deployed one by one):
  * at 1000 Mbps the averages are Docker 6.08 s, Slacker 3.03 s, Gear
    3.04 s — Slacker and Gear comparable, Docker slowest;
  * Docker and Gear speed up on later versions thanks to layer- and
    file-level sharing respectively; Gear's file-level sharing keeps
    improving where Docker's layer sharing plateaus; Slacker stays flat
    (no sharing);
  * dropping to 100 Mbps, Docker and Slacker slow ~2.6–2.7×, Gear only
    ~1.2×.
"""

from repro.baselines.slacker import SlackerDriver
from repro.bench.deploy import (
    deploy_with_docker,
    deploy_with_gear,
    deploy_with_slacker,
)
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table

from conftest import QUICK, run_once

BANDWIDTHS = (1000, 100)


def test_fig10_version_sequence(benchmark, corpus):
    versions = corpus.by_series["tomcat"]

    def sweep():
        results = {}
        for bandwidth in BANDWIDTHS:
            testbed = make_testbed(bandwidth_mbps=bandwidth)
            publish_images(testbed, versions, convert=True)
            # One long-lived client per system: sharing accrues across
            # the sequence exactly as on the paper's single test node.
            docker_client = testbed.fresh_client()
            gear_client = testbed.fresh_client()
            slacker = SlackerDriver(testbed.clock, testbed.link)
            docker_times = []
            gear_times = []
            slacker_times = []
            for generated in versions:
                docker_times.append(
                    deploy_with_docker(docker_client, generated).total_s
                )
                gear_times.append(
                    deploy_with_gear(gear_client, generated).total_s
                )
                slacker_times.append(
                    deploy_with_slacker(slacker, testbed, generated).total_s
                )
            results[bandwidth] = {
                "docker": docker_times,
                "slacker": slacker_times,
                "gear": gear_times,
            }
        return results

    results = run_once(benchmark, sweep)

    for bandwidth in BANDWIDTHS:
        entry = results[bandwidth]
        print(f"\nFig. 10 — sequential Tomcat deployments @ {bandwidth} Mbps (s)")
        rows = [
            (f"v{i + 1}", f"{entry['docker'][i]:.2f}",
             f"{entry['slacker'][i]:.2f}", f"{entry['gear'][i]:.2f}")
            for i in range(len(entry["docker"]))
        ]
        averages = {k: sum(v) / len(v) for k, v in entry.items()}
        rows.append(("avg", f"{averages['docker']:.2f}",
                     f"{averages['slacker']:.2f}", f"{averages['gear']:.2f}"))
        print(format_table(["Version", "Docker", "Slacker", "Gear"], rows))

    fast = {k: sum(v) / len(v) for k, v in results[1000].items()}
    slow = {k: sum(v) / len(v) for k, v in results[100].items()}

    gear_series = results[1000]["gear"]
    slacker_series = results[1000]["slacker"]
    if not QUICK:
        # Docker is the slowest on average at high bandwidth, and Gear
        # improves across the sequence (file sharing).  Both effects need
        # full-size images and a long version chain to show.
        assert fast["docker"] > fast["gear"]
        assert fast["docker"] > fast["slacker"]
        assert min(gear_series[3:]) < gear_series[0] * 0.8
    # Slacker is flat across the sequence (no sharing mechanism).
    half = len(slacker_series) // 2
    later_slacker = sum(slacker_series[half:]) / len(slacker_series[half:])
    early_slacker = sum(slacker_series[:3]) / 3
    assert abs(later_slacker - early_slacker) < 0.35 * early_slacker
    # Bandwidth drop hurts Docker/Slacker much more than Gear (§V-E2).
    docker_slowdown = slow["docker"] / fast["docker"]
    slacker_slowdown = slow["slacker"] / fast["slacker"]
    gear_slowdown = slow["gear"] / fast["gear"]
    print(
        f"\nslowdown 1000->100 Mbps: docker {docker_slowdown:.2f}x, "
        f"slacker {slacker_slowdown:.2f}x, gear {gear_slowdown:.2f}x "
        f"(paper: 2.7x / 2.6x / 1.2x)"
    )
    assert gear_slowdown < min(docker_slowdown, slacker_slowdown) * 0.85
    if not QUICK:
        assert docker_slowdown > 1.8
        assert slacker_slowdown > 1.5
