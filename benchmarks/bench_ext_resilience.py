"""Extension: deployment resilience under a hostile wire.

Not in the paper — Gear's lazy loading assumes the registry answers
every fault (§III-D2).  This sweep measures what the resilience layer
(`repro.net.faults` + `repro.net.resilience`) costs and guarantees when
it doesn't: a drop-rate × outage-length grid, deploying the same images
over each wire and checking the three invariants the design promises:

1. every deployment ends with a verified-readable rootfs (the startup
   trace replays byte-correct content);
2. the shared file pool never caches a poisoned object — every cached
   blob's fingerprint matches its identity;
3. faults are *paid for in time, not correctness*: lossy cells finish
   slower but produce the same bytes as the clean cell.
"""

from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.net.faults import FaultPlan, OutageWindow
from repro.net.resilience import RetryPolicy

from conftest import QUICK, run_once

#: Images deployed per cell; the nginx series exercises cross-version
#: sharing without making the grid quadratic in corpus size.
VERSIONS = 2 if QUICK else 3

DROP_RATES = (0.0, 0.05) if QUICK else (0.0, 0.02, 0.05)
OUTAGE_LENS_S = (0.0, 2.0) if QUICK else (0.0, 2.0, 8.0)

#: Every lossy cell also corrupts: half detected by the transport
#: checksum, half delivered for the viewer's fingerprint check to catch.
CORRUPT_RATE = 0.05


def _plan(drop_rate: float, outage_len_s: float) -> FaultPlan:
    outages = ()
    if outage_len_s > 0:
        outages = (OutageWindow(start_s=0.0, duration_s=outage_len_s),)
    return FaultPlan(
        seed=f"resilience-d{drop_rate}-o{outage_len_s}",
        drop_rate=drop_rate,
        corrupt_rate=CORRUPT_RATE if (drop_rate or outages) else 0.0,
        timeout_s=0.2,
        outages=outages,
        targets=("gear-registry",),
    )


def _pool_is_clean(pool) -> bool:
    """Every cached object's content hash matches its identity key."""
    for identity in list(pool.identities()):
        if identity.startswith("uid-"):
            continue
        inode = pool.get(identity)
        if inode is None or inode.blob.fingerprint != identity:
            return False
    return True


def _deploy_cell(sample, drop_rate: float, outage_len_s: float) -> dict:
    plan = _plan(drop_rate, outage_len_s)
    policy = RetryPolicy(max_attempts=6, base_backoff_s=0.1, max_backoff_s=4.0,
                         deadline_s=60.0, budget_s=600.0)
    testbed = make_testbed(fault_plan=plan, retry_policy=policy)
    testbed.disarm_faults()
    publish_images(testbed, sample, convert=True)
    testbed.arm_faults()

    cell = {"total_s": 0.0, "retries": 0, "errors": 0, "degraded": 0,
            "verified": True}
    for generated in sample:
        result = deploy_with_gear(testbed, generated)
        cell["total_s"] += result.total_s
        cell["retries"] += result.retries
        cell["errors"] += result.errors
        cell["degraded"] += int(result.degraded)
        # Re-read the whole startup trace and compare against ground truth.
        container = testbed.gear_driver.containers()[-1]
        truth = generated.image.flatten()
        for path in generated.trace.paths:
            if container.mount.read_bytes(path) != truth.read_bytes(path):
                cell["verified"] = False
    cell["pool_clean"] = _pool_is_clean(testbed.gear_driver.pool)
    link_stats = testbed.link.fault_stats
    cell["faults"] = link_stats.total_faults
    return cell


def test_ext_resilience_sweep(benchmark, corpus):
    sample = corpus.by_series["nginx"][:VERSIONS]

    def sweep():
        grid = {}
        for drop_rate in DROP_RATES:
            for outage_len_s in OUTAGE_LENS_S:
                grid[(drop_rate, outage_len_s)] = _deploy_cell(
                    sample, drop_rate, outage_len_s
                )
        return grid

    grid = run_once(benchmark, sweep)

    print("\nExt — gear deploy time under faults "
          f"({len(sample)} images, gear-registry targeted)")
    rows = []
    for (drop_rate, outage_len_s), cell in sorted(grid.items()):
        rows.append((
            f"{drop_rate:.0%}",
            f"{outage_len_s:g}",
            f"{cell['total_s']:.2f}",
            f"{cell['retries']}/{cell['errors']}",
            str(cell["degraded"]),
            "ok" if cell["verified"] and cell["pool_clean"] else "FAIL",
        ))
    print(format_table(
        ["Drop", "Outage (s)", "Deploy (s)", "Retries/Errors",
         "Degraded", "Integrity"],
        rows,
    ))

    clean = grid[(0.0, 0.0)]
    # Invariants: every cell ends verified with a clean pool.
    for cell in grid.values():
        assert cell["verified"], "deployment served wrong bytes"
        assert cell["pool_clean"], "poisoned object cached in the pool"
    # The clean cell injects nothing and retries nothing.
    assert clean["faults"] == 0 and clean["retries"] == 0
    # Every lossy cell actually exercised the retry machinery and paid
    # for it in virtual time, never in correctness.
    for key, cell in grid.items():
        if key == (0.0, 0.0):
            continue
        assert cell["faults"] > 0
        assert cell["retries"] > 0
        assert cell["total_s"] > clean["total_s"]
