"""Extension: a highly-available Gear registry tier under faults.

The paper's testbed has a single registry node — a single point of
failure the fleet experiments inherit.  This extension replicates the
Gear registry (:mod:`repro.net.ha`): N replicas behind health-checked
circuit breakers, hedged second fetches against slow replicas, and
bounded admission queues that shed load instead of collapsing.

The sweep crosses replica count × fault scenario × fleet size and
reports per-client latency percentiles alongside the HA accounting —
hedge rate, wasted hedge bytes, shed rate, failovers.  The invariants:

* a whole-run outage of one replica never degrades a deployment to
  Docker-pull fallback, and costs at most 2x the healthy p99;
* a browned-out (slowed) replica is routed around by hedging;
* an overloaded tier sheds typed 503s yet every deployment completes;
* every cell replays deterministically.
"""

from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import publish_images
from repro.bench.reporting import format_table
from repro.net.faults import BrownoutWindow, FaultPlan, OutageWindow
from repro.net.topology import HACluster

from conftest import QUICK, run_once

FLEET_SIZES = (4, 8) if QUICK else (8, 32)
REPLICA_COUNTS = (2, 3) if QUICK else (3, 5)

#: The afflicted replica's whole-run fault plans, per scenario.
SCENARIOS = ("healthy", "outage", "brownout", "overload")


def _cluster(scenario: str, clients: int, replicas: int) -> HACluster:
    kwargs = {"replicas": replicas, "seed": "bench-ha"}
    if scenario == "outage":
        kwargs["replica_fault_plans"] = [
            FaultPlan(
                outages=(OutageWindow(start_s=0.0, duration_s=1e9),),
                seed="bench-ha-outage",
            )
        ]
    elif scenario == "brownout":
        kwargs["replica_fault_plans"] = [
            FaultPlan(
                brownouts=(
                    BrownoutWindow(start_s=0.0, duration_s=1e9, factor=6.0),
                ),
                seed="bench-ha-brownout",
            )
        ]
    elif scenario == "overload":
        kwargs["admission_capacity"] = 2
    return HACluster(clients, **kwargs)


def test_ext_ha_fault_sweep(benchmark, corpus):
    """Replicas × scenario × fleet size against the nginx head image."""
    generated = corpus.by_series["nginx"][0]

    def measure(scenario: str, clients: int, replicas: int):
        cluster = _cluster(scenario, clients, replicas)
        publish_images(cluster.registry_testbed, [generated], convert=True)
        cluster.registry_testbed.arm_faults()
        return cluster.deploy_wave(
            lambda node: deploy_with_gear(node.testbed, generated)
        )

    def sweep():
        return {
            (scenario, clients, replicas): measure(scenario, clients, replicas)
            for scenario in SCENARIOS
            for clients in FLEET_SIZES
            for replicas in REPLICA_COUNTS
        }

    grid = run_once(benchmark, sweep)

    print("\nExtension — HA registry tier under faults (per-client latency, s)")
    print(
        format_table(
            ["Scenario", "Clients", "Replicas", "p50", "p95", "p99",
             "Hedge", "Wasted (KB)", "Shed", "Failovers", "Degraded"],
            [
                (
                    scenario,
                    str(clients),
                    str(replicas),
                    f"{wave.p50_s:.2f}",
                    f"{wave.p95_s:.2f}",
                    f"{wave.p99_s:.2f}",
                    f"{wave.hedge_rate:.0%}",
                    f"{wave.wasted_hedge_bytes / 1e3:.1f}",
                    f"{wave.shed_rate:.0%}",
                    str(wave.failovers),
                    str(wave.degraded),
                )
                for (scenario, clients, replicas), wave in grid.items()
            ],
        )
    )

    for (scenario, clients, replicas), wave in grid.items():
        # One afflicted replica out of >= 2 never forces the degraded
        # Docker-pull fallback: the rest of the tier absorbs its load.
        assert wave.degraded == 0, (scenario, clients, replicas)
        healthy = grid[("healthy", clients, replicas)]
        if scenario == "outage":
            # Failover keeps the outage cell within 2x the healthy p99.
            assert wave.p99_s <= 2 * healthy.p99_s, (clients, replicas)
            assert wave.failovers > 0
            assert wave.breaker_trips > 0
        if scenario == "brownout":
            # The slow replica loses hedge races instead of stalling
            # deployments; cancelled losers charge only moved bytes.
            assert wave.hedges > 0
            assert wave.hedge_wins > 0
        if scenario == "overload":
            # Typed 503s shed load; retries land elsewhere and every
            # client still completes (latencies all recorded).
            assert wave.sheds > 0
            assert len(wave.latencies_s) == clients

    # Determinism: replaying one faulty cell reproduces the report.
    cell = ("outage", FLEET_SIZES[0], REPLICA_COUNTS[0])
    again = measure(*cell)
    assert again.as_dict() == grid[cell].as_dict()
