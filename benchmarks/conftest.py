"""Shared benchmark fixtures.

The benchmarks regenerate the paper's tables and figures on the synthetic
corpus.  By default they use the full Table I corpus (50 series, 971
images, seed 7) — the configuration the calibration in EXPERIMENTS.md was
done against.  Set ``REPRO_BENCH_QUICK=1`` to run on a reduced corpus
(every series, 4 versions, smaller files) for a fast smoke pass; shapes
still hold, absolute numbers shift.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.environment import make_testbed, publish_images
from repro.workloads.corpus import Corpus, CorpusBuilder, CorpusConfig

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def corpus_config() -> CorpusConfig:
    if QUICK:
        return CorpusConfig(seed=7, file_scale=0.3, size_scale=0.25, versions_cap=4)
    return CorpusConfig(seed=7)


@pytest.fixture(scope="session")
def corpus() -> Corpus:
    return CorpusBuilder(corpus_config()).build()


@pytest.fixture(scope="session")
def published(corpus):
    """A testbed with every image pushed and converted, plus the
    conversion reports (used by Fig. 6)."""
    testbed = make_testbed()
    reports = publish_images(testbed, corpus.images, convert=True)
    return testbed, reports


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments measure *virtual* time internally; wall-clock rounds
    would only repeat identical deterministic work.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
