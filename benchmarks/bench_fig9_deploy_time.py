"""Fig. 9: deployment time (pull + run) under different bandwidths.

Paper, average over all images (speedup of Gear over Docker):
    904 Mbps — Gear+cache 1.64x, Gear no-cache 1.4x
    100 Mbps — 2.61x / 1.92x
     20 Mbps — 3.45x / 2.23x
      5 Mbps — 5.01x / 2.95x
Gear's pull phase is much shorter (only the index travels); its run
phase is longer (files fault in on demand).
"""

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table

from conftest import QUICK, run_once

BANDWIDTHS = (904, 100, 20, 5)
PAPER_SPEEDUPS = {904: (1.64, 1.4), 100: (2.61, 1.92), 20: (3.45, 2.23),
                  5: (5.01, 2.95)}


def test_fig9_deployment_time_vs_bandwidth(benchmark, corpus):
    # One representative version per series keeps 4 bandwidths tractable.
    sample = [images[0] for images in corpus.by_series.values()]
    if QUICK:
        sample = sample[::3]

    def sweep():
        results = {}
        for bandwidth in BANDWIDTHS:
            testbed = make_testbed(bandwidth_mbps=bandwidth)
            publish_images(testbed, sample, convert=True)
            docker_pull = docker_run = 0.0
            nc_pull = nc_run = 0.0
            for generated in sample:
                docker = deploy_with_docker(testbed.fresh_client(), generated)
                docker_pull += docker.pull_s
                docker_run += docker.run_s
                gear_nc = deploy_with_gear(
                    testbed.fresh_client(), generated, clear_cache=True
                )
                nc_pull += gear_nc.pull_s
                nc_run += gear_nc.run_s
            # Cached scenario (§V-D): one long-lived client "maintains
            # and uses its locally cached files" — each deployment
            # benefits from the files earlier deployments pulled (shared
            # bases, borrowed runtimes), not from a copy of itself.
            cache_pull = cache_run = 0.0
            cached_client = testbed.fresh_client()
            for generated in sample:
                gear_c = deploy_with_gear(cached_client, generated)
                cache_pull += gear_c.pull_s
                cache_run += gear_c.run_s
            count = len(sample)
            results[bandwidth] = {
                "docker": (docker_pull / count, docker_run / count),
                "gear_nc": (nc_pull / count, nc_run / count),
                "gear_cache": (cache_pull / count, cache_run / count),
            }
        return results

    results = run_once(benchmark, sweep)

    print("\nFig. 9 — average deployment time (pull / run), seconds")
    rows = []
    for bandwidth in BANDWIDTHS:
        entry = results[bandwidth]
        docker_total = sum(entry["docker"])
        nc_total = sum(entry["gear_nc"])
        cache_total = sum(entry["gear_cache"])
        rows.append(
            (
                f"{bandwidth} Mbps",
                f"{entry['docker'][0]:.2f}/{entry['docker'][1]:.2f}",
                f"{entry['gear_nc'][0]:.2f}/{entry['gear_nc'][1]:.2f}",
                f"{entry['gear_cache'][0]:.2f}/{entry['gear_cache'][1]:.2f}",
                f"{docker_total / cache_total:.2f}x / "
                f"{docker_total / nc_total:.2f}x",
                f"{PAPER_SPEEDUPS[bandwidth][0]:.2f}x / "
                f"{PAPER_SPEEDUPS[bandwidth][1]:.2f}x",
            )
        )
    print(
        format_table(
            ["Bandwidth", "Docker p/r", "Gear-nc p/r", "Gear-cache p/r",
             "Speedup (cache/nc)", "Paper"],
            rows,
        )
    )

    # Shape assertions.
    for bandwidth in BANDWIDTHS:
        entry = results[bandwidth]
        # Gear pulls are far shorter; Gear runs are longer (§V-E1).
        assert entry["gear_nc"][0] < entry["docker"][0]
        assert entry["gear_nc"][1] > entry["docker"][1]
        assert sum(entry["gear_cache"]) <= sum(entry["gear_nc"]) * 1.02
        # Gear wins end to end wherever pulling matters; at 904 Mbps the
        # advantage can vanish on small corpora (the paper itself notes
        # "no obvious advantage … in high bandwidth").
        if bandwidth <= 100 or not QUICK:
            assert sum(entry["gear_nc"]) < sum(entry["docker"])
    # Speedups grow as bandwidth falls, reaching several-x at 5 Mbps.
    speedup = {
        bw: sum(results[bw]["docker"]) / sum(results[bw]["gear_cache"])
        for bw in BANDWIDTHS
    }
    assert speedup[5] > speedup[20] > speedup[100] > speedup[904]
    assert speedup[5] > 3.0
    if not QUICK:
        assert speedup[904] > 1.0
