"""Ablation: shared-cache replacement policy and capacity.

§III-D1 leaves the cache policy to the operator ("FIFO or LRU"; files
not linked by any index are the eviction candidates).  This ablation
quantifies what the choice costs: deploy a version sequence under an
unbounded cache, capacity-bounded LRU and FIFO, and no cache at all, and
compare remote traffic.
"""

from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table, pct
from repro.gear.pool import EvictionPolicy

from conftest import run_once

SERIES_UNDER_TEST = ("tomcat", "nginx", "mysql")


def test_ablation_cache_policy(benchmark, corpus):
    sample = []
    for name in SERIES_UNDER_TEST:
        sample.extend(corpus.by_series[name][:6])

    def run_policy(policy, capacity):
        """Deploy the sample as short-lived jobs.

        Each container is destroyed and its *image* removed after the
        deployment ("old images have to be replaced quickly", §II-D), so
        cached files unpin and become eviction candidates — the regime
        where capacity and policy actually matter.
        """
        testbed = make_testbed(
            pool_capacity_bytes=capacity, pool_policy=policy or EvictionPolicy.LRU
        )
        publish_images(testbed, sample, convert=True)
        client = testbed.fresh_client()
        client.gear_driver.pool.capacity_bytes = capacity
        client.gear_driver.pool.policy = policy or EvictionPolicy.LRU
        total = 0
        for generated in sample:
            result = deploy_with_gear(
                client, generated, clear_cache=(policy is None)
            )
            total += result.network_bytes
            container = client.gear_driver.containers()[-1]
            client.gear_driver.destroy_container(container)
            reference = f"{generated.spec.name}.gear:{generated.tag}"
            client.gear_driver.remove_image(reference)
        return total, client.gear_driver.pool

    def sweep():
        # Capacity ≈ a third of the unique bytes the sweep touches: tight
        # enough to force evictions, loose enough to retain value.
        unbounded_bytes, pool = run_policy(EvictionPolicy.LRU, None)
        capacity = max(1, pool.used_bytes // 3)
        lru_bytes, _ = run_policy(EvictionPolicy.LRU, capacity)
        fifo_bytes, _ = run_policy(EvictionPolicy.FIFO, capacity)
        none_bytes, _ = run_policy(None, None)
        return unbounded_bytes, lru_bytes, fifo_bytes, none_bytes

    unbounded, lru, fifo, none = run_once(benchmark, sweep)

    print("\nAblation — shared-cache policy vs remote traffic")
    print(
        format_table(
            ["Cache configuration", "Remote bytes (MB)", "vs no cache"],
            [
                ("unbounded", f"{unbounded / 1e6:.1f}", pct(unbounded / none)),
                ("LRU @ 1/3 capacity", f"{lru / 1e6:.1f}", pct(lru / none)),
                ("FIFO @ 1/3 capacity", f"{fifo / 1e6:.1f}", pct(fifo / none)),
                ("no cache", f"{none / 1e6:.1f}", pct(1.0)),
            ],
        )
    )

    # Any cache beats none; unbounded is the floor; a bounded cache sits
    # between (evictions cost refetches).
    assert unbounded < none
    assert unbounded <= lru <= none
    assert unbounded <= fifo <= none
