"""Extension: simulator throughput — the speed the paper-scale runs need.

The fleet/contention/edge extensions all push the discrete-event core to
thousands of concurrent clients; what bounds them is events/sec of the
simulator itself, not anything in the Gear model.  This extension gates
that speed:

* **microflows** — the core's ceiling (scheduler + fair-share link, no
  Gear stack) at the standard 1024x4 shape, in both execution modes.
  The generator mode must clear ``SPEEDUP_GATE`` (5x) over the recorded
  pre-refactor baseline, and both modes must report byte-identical
  deterministic fields (the cross-mode equivalence the refactor keeps);
* **deploy_wave** — the standard 1024-client Gear fleet wave must finish
  inside a 10 s wall-clock budget (the bound the speed arc was sized
  against; QUICK runs a 256-client wave with a proportional budget).

Wall-clock numbers are printed for the operator but only the simulated
fields are asserted deterministically; the throughput gates compare
against fixed in-repo baselines so a core regression fails loudly here
before it slows every other benchmark.
"""

from repro.bench.reporting import format_table
from repro.bench.speed import (
    BASELINE_MICROFLOW_EVENTS_PER_S,
    MICROFLOW_CLIENTS,
    SPEEDUP_GATE,
    run_deploy_wave,
    run_microflows,
)

from conftest import QUICK, run_once

#: Fleet size for the wall-clock budget check.
WAVE_CLIENTS = 256 if QUICK else 1024

#: Wall budget for the wave: 10 s at 1024 clients (the speed-arc
#: acceptance bar), scaled linearly for the QUICK fleet.
WAVE_WALL_BUDGET_S = 10.0 * WAVE_CLIENTS / 1024


def test_ext_speed_microflow_throughput(benchmark):
    def sweep():
        return {mode: run_microflows(mode=mode) for mode in ("thread", "gen")}

    reports = run_once(benchmark, sweep)

    print(f"\nExtension — simulator core throughput ({MICROFLOW_CLIENTS} flows)")
    print(
        format_table(
            ["Mode", "Events", "Virtual (s)", "Sim MB", "Wall (s)", "Events/s"],
            [
                (
                    mode,
                    str(r.events),
                    f"{r.virtual_s:.3f}",
                    f"{r.simulated_bytes / 1e6:.1f}",
                    f"{r.wall_s:.3f}",
                    f"{r.events_per_s:,.0f}",
                )
                for mode, r in reports.items()
            ],
        )
    )
    baseline = BASELINE_MICROFLOW_EVENTS_PER_S
    speedup = reports["gen"].events_per_s / baseline
    print(
        f"gen-mode speedup over recorded pre-refactor baseline "
        f"({baseline:,.0f} ev/s): {speedup:.1f}x (gate {SPEEDUP_GATE:g}x)"
    )

    # Cross-mode equivalence: generator and thread execution replay the
    # same schedule, so every deterministic field must match exactly.
    gen, thread = reports["gen"].deterministic(), reports["thread"].deterministic()
    del gen["mode"], thread["mode"]
    assert gen == thread
    # The regression gate proper: the refactored core must hold >= 5x the
    # recorded pre-refactor throughput on the identical scenario.
    assert reports["gen"].events_per_s >= SPEEDUP_GATE * baseline
    # Determinism: a second identical run replays byte-identically.
    again = run_microflows(mode="gen").deterministic()
    assert again == reports["gen"].deterministic()


def test_ext_speed_deploy_wave_wall(benchmark):
    report = run_once(benchmark, lambda: run_deploy_wave(WAVE_CLIENTS))

    print(
        f"\nExtension — {WAVE_CLIENTS}-client Gear deploy wave: "
        f"wall={report.wall_s:.2f} s (budget {WAVE_WALL_BUDGET_S:.1f} s), "
        f"makespan={report.virtual_s:.3f} s virtual, "
        f"{report.events_per_s:,.0f} events/s, "
        f"{report.simulated_bytes_per_s / 1e6:,.0f} simulated MB/s"
    )
    # Every client deployed: the wave moved real bytes and virtual time.
    assert report.events > WAVE_CLIENTS
    assert report.simulated_bytes > 0
    assert report.virtual_s > 0
    # The speed-arc wall budget: 1024 clients inside 10 s (scaled under
    # QUICK).  A generous bound relative to current performance, so only
    # a genuine core regression trips it, not machine noise.
    assert report.wall_s <= WAVE_WALL_BUDGET_S
