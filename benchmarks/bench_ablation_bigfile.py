"""Ablation: chunk-granular lazy reads for big files (§VII future work).

An "AI container" holds a multi-GB model file but the startup path reads
only its header and embedding table.  Whole-file Gear must download the
entire model before the first read completes; the chunked extension
fetches only the touched chunks.
"""

from repro.blob import Blob
from repro.common.clock import SimClock
from repro.common.units import MiB
from repro.bench.reporting import format_table
from repro.gear.bigfile import ChunkedGearFileViewer
from repro.gear.gearfile import GearFile
from repro.gear.index import GearIndex
from repro.gear.pool import SharedFilePool
from repro.gear.registry import GearRegistry
from repro.gear.viewer import GearFileViewer
from repro.net.link import Link
from repro.net.transport import RpcTransport
from repro.vfs.tree import FileSystemTree

from conftest import run_once

MODEL_BYTES = 256 * MiB
#: (offset, length) reads the model loader issues at startup.
STARTUP_READS = (
    (0, 64 * 1024),                    # header
    (1 * MiB, 2 * MiB),                # embedding table
    (MODEL_BYTES - 512 * 1024, 512 * 1024),  # trailing metadata
)


def build_env(chunked, bandwidth_mbps=100):
    root = FileSystemTree()
    root.write_file(
        "/models/llm.bin", Blob.synthetic("llm-weights", MODEL_BYTES), parents=True
    )
    root.write_file("/etc/serving.conf", b"threads=8", parents=True)
    index = GearIndex.from_tree("ai.gear", "v1", root)
    clock = SimClock()
    link = Link(clock, bandwidth_mbps=bandwidth_mbps)
    transport = RpcTransport(link)
    registry = GearRegistry()
    transport.bind(registry.endpoint())
    for _, node in root.iter_files():
        registry.upload(GearFile.from_blob(node.blob))
    viewer_cls = ChunkedGearFileViewer if chunked else GearFileViewer
    viewer = viewer_cls(index, SharedFilePool(), transport=transport)
    return clock, link, viewer


def test_ablation_bigfile_chunked_reads(benchmark):
    def sweep():
        results = {}
        for mode, chunked in (("whole-file", False), ("chunked", True)):
            clock, link, viewer = build_env(chunked)
            viewer.read_bytes("/etc/serving.conf")
            for offset, length in STARTUP_READS:
                if chunked:
                    viewer.read_range("/models/llm.bin", offset, length)
                else:
                    viewer.read_blob("/models/llm.bin")
            results[mode] = (clock.now, link.log.total_bytes)
        return results

    results = run_once(benchmark, sweep)

    print("\nAblation — big-file startup (256 MiB model, partial reads) @100 Mbps")
    print(
        format_table(
            ["Mode", "Startup time (s)", "Bytes transferred (MB)"],
            [
                (mode, f"{seconds:.2f}", f"{transferred / 1e6:.1f}")
                for mode, (seconds, transferred) in results.items()
            ],
        )
    )

    whole_time, whole_bytes = results["whole-file"]
    chunk_time, chunk_bytes = results["chunked"]
    # The startup reads touch ~3 MiB of a 256 MiB model: the chunked
    # path must be over an order of magnitude cheaper.
    assert chunk_bytes < whole_bytes / 10
    assert chunk_time < whole_time / 5
