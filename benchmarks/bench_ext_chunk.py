"""Extension: the fault-tolerant chunk-granular read path.

Three claims, each asserted:

* **Time to first read** — a startup that touches only the head of a big
  model file completes far faster through the chunked viewer than the
  whole-file download it replaces.
* **Chunk-level dedup** — a new image version that mutates a fraction of
  a model's chunks re-fetches only the changed chunks; the shared-chunk
  index pre-marks the rest from the pool.
* **Replay determinism** — the faulty-wire sweep (drops + undetected
  corruption + retries + backoff) produces byte-identical reports on a
  double run: fault injection, verification, and recovery are all
  seed-deterministic.
"""

import json

from repro.blob import Blob, DEFAULT_CHUNK_SIZE
from repro.common.clock import SimClock
from repro.common.units import MiB
from repro.bench.reporting import format_table
from repro.gear.bigfile import ChunkedGearFileViewer
from repro.gear.gearfile import GearFile
from repro.gear.index import GearIndex
from repro.gear.pool import SharedFilePool
from repro.gear.registry import GearRegistry
from repro.gear.viewer import GearFileViewer
from repro.net.faults import FaultyLink, chunk_plan
from repro.net.link import Link
from repro.net.resilience import RetryPolicy
from repro.net.transport import RpcTransport
from repro.vfs.tree import FileSystemTree

from conftest import QUICK, run_once

MODEL_BYTES = (32 if QUICK else 128) * MiB
MODEL_PATH = "/models/llm.bin"


def build_env(blob, *, plan=None, pool=None, bandwidth_mbps=100):
    root = FileSystemTree()
    root.write_file(MODEL_PATH, blob, parents=True)
    index = GearIndex.from_tree("ai.gear", "v1", root)
    clock = SimClock()
    if plan is not None:
        link = FaultyLink(clock, plan, bandwidth_mbps=bandwidth_mbps)
    else:
        link = Link(clock, bandwidth_mbps=bandwidth_mbps)
    transport = RpcTransport(link, retry_policy=RetryPolicy(seed="bench-rpc"))
    registry = GearRegistry()
    transport.bind(registry.endpoint())
    registry.upload(GearFile.from_blob(blob))
    return clock, link, transport, index, registry


def test_chunk_time_to_first_read(benchmark):
    """Reading the model header must not pay for the whole model."""

    def sweep():
        blob = Blob.synthetic("llm", MODEL_BYTES)
        results = {}
        for mode in ("whole-file", "chunked"):
            clock, link, transport, index, _ = build_env(blob)
            if mode == "chunked":
                viewer = ChunkedGearFileViewer(
                    index, SharedFilePool(), transport=transport
                )
                viewer.read_range(MODEL_PATH, 0, 64 * 1024)
            else:
                viewer = GearFileViewer(
                    index, SharedFilePool(), transport=transport
                )
                viewer.read_blob(MODEL_PATH)
            results[mode] = (clock.now, link.log.total_bytes)
        return results

    results = run_once(benchmark, sweep)
    print(
        f"\nExtension — time to first read "
        f"({MODEL_BYTES // MiB} MiB model, 64 KiB header) @100 Mbps"
    )
    print(
        format_table(
            ["Mode", "First read (s)", "Bytes (MB)"],
            [
                (mode, f"{seconds:.3f}", f"{transferred / 1e6:.1f}")
                for mode, (seconds, transferred) in results.items()
            ],
        )
    )
    whole_s, whole_bytes = results["whole-file"]
    chunk_s, chunk_bytes = results["chunked"]
    assert chunk_s < whole_s / 5
    assert chunk_bytes < whole_bytes / 10


def test_chunk_dedup_across_versions(benchmark):
    """v2 mutates 1/8 of the chunks: only those travel again."""

    def sweep():
        v1 = Blob.synthetic("llm", MODEL_BYTES)
        v2 = v1.mutate("v2", 0.125)
        clock, link, transport, index, registry = build_env(v1)
        pool = SharedFilePool()
        viewer = ChunkedGearFileViewer(index, pool, transport=transport)
        viewer.read_range(MODEL_PATH, 0, MODEL_BYTES)
        v1_bytes = link.log.total_bytes

        registry.upload(GearFile.from_blob(v2))
        root = FileSystemTree()
        root.write_file(MODEL_PATH, v2, parents=True)
        index2 = GearIndex.from_tree("ai.gear", "v2", root)
        viewer2 = ChunkedGearFileViewer(index2, pool, transport=transport)
        viewer2.read_range(MODEL_PATH, 0, MODEL_BYTES)
        v2_bytes = link.log.total_bytes - v1_bytes
        return v1_bytes, v2_bytes, viewer2.chunk_stats

    v1_bytes, v2_bytes, stats = run_once(benchmark, sweep)
    total_chunks = MODEL_BYTES // DEFAULT_CHUNK_SIZE
    print(
        f"\nExtension — chunk dedup across versions "
        f"({MODEL_BYTES // MiB} MiB model, 12.5% mutated)"
    )
    print(
        format_table(
            ["Version", "Bytes (MB)", "Chunks fetched", "Chunks deduped"],
            [
                ("v1 (cold)", f"{v1_bytes / 1e6:.1f}", str(total_chunks), "0"),
                (
                    "v2 (shared pool)", f"{v2_bytes / 1e6:.1f}",
                    str(stats.chunks_fetched), str(stats.chunks_deduped),
                ),
            ],
        )
    )
    assert stats.chunks_deduped > 0
    assert stats.chunks_fetched + stats.chunks_deduped == total_chunks
    # 12.5% mutated → v2 should cost roughly an eighth of v1 on the wire.
    assert v2_bytes < v1_bytes / 4


def test_chunk_faulty_sweep_replays_identically(benchmark):
    """Double-run the hostile-wire read: reports must be byte-identical."""

    def one_run():
        blob = Blob.synthetic("llm", MODEL_BYTES)
        plan = chunk_plan(
            seed="bench-chunk-faults",
            drop_rate=0.03,
            corrupt_rate=0.08,
            corrupt_detect_rate=0.5,
        )
        clock, link, transport, index, _ = build_env(blob, plan=plan)
        viewer = ChunkedGearFileViewer(
            index, SharedFilePool(), transport=transport,
            chunk_retry=RetryPolicy(seed="bench-chunk-verify"),
        )
        viewer.read_range(MODEL_PATH, 0, MODEL_BYTES)
        report = {"total_s": clock.now, "bytes": link.log.total_bytes}
        report.update(viewer.chunk_stats.metrics())
        return json.dumps(report, sort_keys=True)

    def sweep():
        return one_run(), one_run()

    first, second = run_once(benchmark, sweep)
    report = json.loads(first)
    print("\nExtension — faulty-wire chunk sweep (double-run replay)")
    print(
        format_table(
            ["Metric", "Value"],
            [
                ("virtual seconds", f"{report['total_s']:.3f}"),
                ("wire bytes (MB)", f"{report['bytes'] / 1e6:.1f}"),
                ("chunks fetched", str(report["chunks_fetched"])),
                ("integrity failures",
                 str(report["chunk_integrity_failures"])),
                ("refetches", str(report["chunk_refetches"])),
                ("replay identical", str(first == second)),
            ],
        )
    )
    assert report["chunk_integrity_failures"] > 0  # the wire was hostile
    assert first == second
