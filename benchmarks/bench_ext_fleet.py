"""Extension: registry load when a fleet of nodes deploys the same image.

§I motivates Gear with registry pressure ("the surge in the number of
images puts high pressure on the registry in terms of bandwidth").  This
extension quantifies it: N nodes roll out one image; the registry's
egress and uplink busy-time are what an operator provisions for.  Gear's
per-deployment byte reduction translates 1:1 into fleet capacity.
"""

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import publish_images
from repro.bench.reporting import format_table
from repro.net.topology import Cluster

from conftest import QUICK, run_once

NODES = 4 if QUICK else 8


def test_ext_fleet_registry_load(benchmark, corpus):
    generated = corpus.by_series["nginx"][0]

    def sweep():
        loads = {}
        for system, deploy in (
            ("docker", lambda node: deploy_with_docker(node.testbed, generated)),
            ("gear", lambda node: deploy_with_gear(node.testbed, generated)),
        ):
            cluster = Cluster(NODES, bandwidth_mbps=904)
            publish_images(
                cluster.registry_testbed, [generated], convert=True
            )
            publish_bytes = cluster.registry_egress_bytes
            cluster.each_node(lambda node: deploy(node) and None)
            loads[system] = (
                cluster.registry_egress_bytes - publish_bytes,
                cluster.registry_busy_seconds(),
            )
        return loads

    loads = run_once(benchmark, sweep)

    print(f"\nExtension — registry load for a {NODES}-node rollout")
    print(
        format_table(
            ["System", "Registry egress (MB)", "Uplink busy (s)"],
            [
                (system, f"{egress / 1e6:.1f}", f"{busy:.2f}")
                for system, (egress, busy) in loads.items()
            ],
        )
    )
    docker_egress, _ = loads["docker"]
    gear_egress, _ = loads["gear"]
    # Fig. 8's per-deployment reduction (~70%) shows up fleet-wide: every
    # node downloads only its necessary files.
    assert gear_egress < docker_egress * 0.5
    # Docker's egress scales linearly with nodes (no cross-node sharing
    # in either system at the registry).
    per_node = docker_egress / NODES
    assert per_node > generated.image.compressed_size * 0.9
