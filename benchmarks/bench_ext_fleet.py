"""Extension: registry load when a fleet of nodes deploys the same image.

§I motivates Gear with registry pressure ("the surge in the number of
images puts high pressure on the registry in terms of bandwidth").  This
extension quantifies it twice over:

* the *rolling* experiment (seed): N nodes deploy in sequence; registry
  egress and uplink busy-time are what an operator provisions for, and
  Gear's per-deployment byte reduction translates 1:1 into fleet
  capacity;
* the *contention* sweep: N clients pull **simultaneously**, their
  transfers fair-sharing the registry uplink under the discrete-event
  scheduler.  Per-client deployment latency degrades with N much faster
  for Docker (whole images cross the saturated wire) than for Gear
  (only necessary files travel; with a warm cache almost nothing does).
"""

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import publish_images
from repro.bench.reporting import format_table
from repro.net.topology import Cluster

from conftest import QUICK, run_once

NODES = 4 if QUICK else 8

#: Concurrent-client counts for the contention sweep (1 → 1024).  The
#: top count exercises the incremental fair-share link model and the
#: generator/handoff scheduler at fleet scale; the speed gate in
#: ``bench_ext_speed.py`` keeps the wall cost of that cell bounded.
CONTENTION_CLIENTS = (1, 4, 16) if QUICK else (1, 4, 16, 64, 1024)

#: The sweep runs where pulling matters; at the testbed's 904 Mbps the
#: run phase dominates and contention barely registers (§V-E1).
CONTENTION_BANDWIDTH = 100


def test_ext_fleet_registry_load(benchmark, corpus):
    generated = corpus.by_series["nginx"][0]

    def sweep():
        loads = {}
        for system, deploy in (
            ("docker", lambda node: deploy_with_docker(node.testbed, generated)),
            ("gear", lambda node: deploy_with_gear(node.testbed, generated)),
        ):
            cluster = Cluster(NODES, bandwidth_mbps=904)
            publish_images(
                cluster.registry_testbed, [generated], convert=True
            )
            publish_bytes = cluster.registry_egress_bytes
            cluster.each_node(lambda node: deploy(node) and None)
            loads[system] = (
                cluster.registry_egress_bytes - publish_bytes,
                cluster.registry_busy_seconds(),
            )
        return loads

    loads = run_once(benchmark, sweep)

    print(f"\nExtension — registry load for a {NODES}-node rollout")
    print(
        format_table(
            ["System", "Registry egress (MB)", "Uplink busy (s)"],
            [
                (system, f"{egress / 1e6:.1f}", f"{busy:.2f}")
                for system, (egress, busy) in loads.items()
            ],
        )
    )
    docker_egress, _ = loads["docker"]
    gear_egress, _ = loads["gear"]
    # Fig. 8's per-deployment reduction (~70%) shows up fleet-wide: every
    # node downloads only its necessary files.
    assert gear_egress < docker_egress * 0.5
    # Docker's egress scales linearly with nodes (no cross-node sharing
    # in either system at the registry).
    per_node = docker_egress / NODES
    assert per_node > generated.image.compressed_size * 0.9


def test_ext_fleet_contention_sweep(benchmark, corpus):
    """1 → 1024 clients pulling the same image at once on a shared uplink.

    Three systems per client count: Docker, Gear with the local cache
    cleared ("gear_nc"), and Gear with a cache warmed by a previous
    version of the image ("gear_cache", the cross-version sharing of
    Fig. 9).  Reported per system: p50/p95/p99 per-client latency,
    makespan, and registry-uplink utilization.
    """
    target = corpus.by_series["nginx"][0]
    prev = corpus.by_series["nginx"][1]

    def measure(system: str, clients: int):
        cluster = Cluster(clients, bandwidth_mbps=CONTENTION_BANDWIDTH)
        publish_images(cluster.registry_testbed, [target, prev], convert=True)
        if system == "gear_cache":
            # Warm every node's shared pool with the *previous* version;
            # the measured wave then shares files across versions.
            cluster.deploy_wave(
                lambda node: deploy_with_gear(node.testbed, prev) and None
            )
        actions = {
            "docker": lambda node: deploy_with_docker(node.testbed, target),
            "gear_nc": lambda node: deploy_with_gear(
                node.testbed, target, clear_cache=True
            ),
            "gear_cache": lambda node: deploy_with_gear(node.testbed, target),
        }
        return cluster.deploy_wave(actions[system])

    def sweep():
        return {
            (system, clients): measure(system, clients)
            for system in ("docker", "gear_nc", "gear_cache")
            for clients in CONTENTION_CLIENTS
        }

    grid = run_once(benchmark, sweep)

    print(
        f"\nExtension — shared-uplink contention @ "
        f"{CONTENTION_BANDWIDTH:g} Mbps (per-client latency, s)"
    )
    print(
        format_table(
            ["System", "Clients", "p50", "p95", "p99", "Makespan", "Util"],
            [
                (
                    system,
                    str(clients),
                    f"{wave.p50_s:.2f}",
                    f"{wave.p95_s:.2f}",
                    f"{wave.p99_s:.2f}",
                    f"{wave.makespan_s:.2f}",
                    f"{wave.utilization:.2f}",
                )
                for (system, clients), wave in grid.items()
            ],
        )
    )

    lo, hi = CONTENTION_CLIENTS[0], CONTENTION_CLIENTS[-1]
    ratio = {
        system: grid[(system, hi)].p95_s / grid[(system, lo)].p95_s
        for system in ("docker", "gear_nc", "gear_cache")
    }
    # Docker ships whole images through the saturated wire, so its
    # per-client latency degrades markedly faster than Gear's (§I).
    assert ratio["docker"] > ratio["gear_nc"] * 1.3
    # A warm cross-version cache pulls almost nothing: near-flat scaling.
    assert ratio["gear_cache"] < ratio["gear_nc"] * 0.6
    for system in ("docker", "gear_nc", "gear_cache"):
        p95s = [grid[(system, n)].p95_s for n in CONTENTION_CLIENTS]
        # Latency never improves as contention grows.
        assert all(b >= a for a, b in zip(p95s, p95s[1:]))
        for clients in CONTENTION_CLIENTS:
            assert 0.0 <= grid[(system, clients)].utilization <= 1.0 + 1e-9
    # More concurrent pullers keep the uplink busier.
    assert (
        grid[("docker", hi)].utilization > grid[("docker", lo)].utilization
    )
    # Determinism: an identical cluster replays to identical latencies.
    again = measure("docker", CONTENTION_CLIENTS[1])
    assert again.latencies_s == grid[("docker", CONTENTION_CLIENTS[1])].latencies_s
