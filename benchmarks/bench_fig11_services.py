"""Fig. 11: long-running throughput and short-running lifecycle times.

Paper:
  (a) Redis / Memcached (memtier, 1:10 SET-GET) and Nginx / Httpd
      (Apache ab) show the same throughput under Gear and Docker —
      lazy retrieval costs nothing at steady state.
  (b) Repeating launch→request→destroy 100 times on Httpd, Gear holds a
      slight edge: teardown only destroys the inode caches of the files
      the container actually used.
"""

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.workloads.services import SERVICES, run_service

from conftest import run_once

LIFECYCLE_ROUNDS = 100


def _service_corpus_image(corpus, name):
    return corpus.by_series[name][0]


def test_fig11a_long_running_throughput(benchmark, corpus):
    def sweep():
        testbed = make_testbed()
        targets = [_service_corpus_image(corpus, spec.name) for spec in SERVICES]
        publish_images(testbed, targets, convert=True)
        rates = {}
        for spec, generated in zip(SERVICES, targets):
            docker_client = testbed.fresh_client()
            docker_client.daemon.pull(generated.reference)
            docker_container = docker_client.daemon.run(generated.reference)

            gear_client = testbed.fresh_client()
            gear_container, _ = gear_client.gear_driver.deploy(
                f"{generated.spec.name}.gear:{generated.tag}"
            )
            # Warm both containers to steady state: the paper measures
            # sustained memtier/ab throughput, after Gear's one-time
            # first-touch faults are behind it.
            for mount in (docker_container.mount, gear_container.mount):
                for path, _ in generated.trace.accesses[: spec.working_set_files]:
                    mount.read_blob(path)

            docker_rate = run_service(
                testbed.clock, docker_container.mount, generated.trace, spec
            ).requests_per_second
            gear_rate = run_service(
                testbed.clock, gear_container.mount, generated.trace, spec
            ).requests_per_second
            rates[spec.name] = (docker_rate, gear_rate)
        return rates

    rates = run_once(benchmark, sweep)

    print("\nFig. 11(a) — service throughput, Gear normalized to Docker")
    print(
        format_table(
            ["Service", "Docker req/s", "Gear req/s", "Normalized"],
            [
                (name, f"{docker_rate:.0f}", f"{gear_rate:.0f}",
                 f"{gear_rate / docker_rate:.3f}")
                for name, (docker_rate, gear_rate) in rates.items()
            ],
        )
    )
    # Gear ≈ Docker at steady state (within 5%).
    for name, (docker_rate, gear_rate) in rates.items():
        assert 0.95 < gear_rate / docker_rate < 1.05, name


def test_fig11b_short_running_lifecycle(benchmark, corpus):
    generated = _service_corpus_image(corpus, "httpd")
    request_trace = generated.trace.head(12)

    def sweep():
        testbed = make_testbed()
        publish_images(testbed, [generated], convert=True)
        clock = testbed.clock

        docker_client = testbed.fresh_client()
        docker_client.daemon.pull(generated.reference)
        docker = {"launch": 0.0, "request": 0.0, "destroy": 0.0}
        for _ in range(LIFECYCLE_ROUNDS):
            timer = clock.timer()
            container = docker_client.daemon.run(generated.reference)
            docker["launch"] += timer.restart()
            for path, _ in request_trace.accesses:
                container.mount.read_blob(path)
            docker["request"] += timer.restart()
            docker_client.daemon.destroy_container(container)
            docker["destroy"] += timer.restart()

        gear_client = testbed.fresh_client()
        reference = f"{generated.spec.name}.gear:{generated.tag}"
        gear_client.gear_driver.pull_index(reference)
        gear = {"launch": 0.0, "request": 0.0, "destroy": 0.0}
        for _ in range(LIFECYCLE_ROUNDS):
            timer = clock.timer()
            container = gear_client.gear_driver.create_container(reference)
            gear_client.gear_driver.start_container(container)
            gear["launch"] += timer.restart()
            for path, _ in request_trace.accesses:
                container.mount.read_blob(path)
            gear["request"] += timer.restart()
            gear_client.gear_driver.destroy_container(container)
            gear["destroy"] += timer.restart()
        return docker, gear

    docker, gear = run_once(benchmark, sweep)

    print(f"\nFig. 11(b) — Httpd launch/request/destroy, avg over "
          f"{LIFECYCLE_ROUNDS} rounds (s)")
    print(
        format_table(
            ["Phase", "Docker", "Gear"],
            [
                (phase, f"{docker[phase] / LIFECYCLE_ROUNDS:.4f}",
                 f"{gear[phase] / LIFECYCLE_ROUNDS:.4f}")
                for phase in ("launch", "request", "destroy")
            ],
        )
    )

    # Gear destroys faster (fewer inode caches, §V-F); launch is
    # comparable; overall Gear holds a slight advantage.
    assert gear["destroy"] < docker["destroy"]
    assert gear["launch"] < docker["launch"] * 1.1
    gear_total = sum(gear.values())
    docker_total = sum(docker.values())
    assert gear_total < docker_total * 1.05
