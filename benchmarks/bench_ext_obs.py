"""Extension: the telemetry plane's overhead and attribution quality.

The span instrumentation is always-on in the code — ``clock.span(...)``
sits in every hot path — so its cost when *detached* (no tracer) must be
negligible: one attribute check returning a shared null object.  This
benchmark measures that directly (wall-clock per call), compares a full
traced deployment against an untraced one, and asserts the analysis
side's quality bar: the span tree covers >= 95% of the deploy makespan
and the per-phase exclusive times sum to the deploy total exactly.

All assertions here ride the Fig. 9 testbed (nginx head image, 100 Mbps)
— the same configuration the `repro.cli trace` acceptance gate uses.
"""

import time

from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.common.clock import NULL_SPAN, SimClock
from repro.obs import critical_path

from conftest import run_once

#: Detached ``clock.span`` calls per timing loop.
CALLS = 200_000
#: Wall-clock budget per detached call: generous even for slow CI boxes;
#: a real regression (allocation, tracer work) blows through it by 10x.
DETACHED_BUDGET_S = 5e-6


def _time_span_calls(clock: SimClock, calls: int) -> float:
    """Wall seconds per ``clock.span(...)`` call (labels included)."""
    span = clock.span  # the call sites' cost, minus attribute lookup noise
    start = time.perf_counter()
    for _ in range(calls):
        with span("fetch_file", fp="abcdef123456"):
            pass
    return (time.perf_counter() - start) / calls


def _timed_deploy(corpus, *, traced: bool):
    """One cold Gear deploy; returns (wall_s, tracer, result)."""
    generated = corpus.by_series["nginx"][0]
    testbed = make_testbed(bandwidth_mbps=100)
    publish_images(testbed, [generated], convert=True)
    tracer = testbed.attach_tracer() if traced else None
    start = time.perf_counter()
    result = deploy_with_gear(testbed, generated)
    return time.perf_counter() - start, tracer, result


def test_ext_obs_overhead_and_attribution(benchmark, corpus):
    """Detached spans are free; attached tracing attributes the makespan."""

    def measure():
        detached_clock = SimClock()
        attached_clock = SimClock()
        attached_clock.attach_tracer()
        per_call_detached = _time_span_calls(detached_clock, CALLS)
        per_call_attached = _time_span_calls(attached_clock, CALLS)
        wall_off, _, result_off = _timed_deploy(corpus, traced=False)
        wall_on, tracer, result_on = _timed_deploy(corpus, traced=True)
        return {
            "per_call_detached_s": per_call_detached,
            "per_call_attached_s": per_call_attached,
            "deploy_wall_off_s": wall_off,
            "deploy_wall_on_s": wall_on,
            "tracer": tracer,
            "result_off": result_off,
            "result_on": result_on,
        }

    out = run_once(benchmark, measure)

    # Detached instrumentation must be negligible — the property that
    # lets span calls live unguarded in every hot path.
    assert out["per_call_detached_s"] < DETACHED_BUDGET_S, (
        f"detached clock.span costs {out['per_call_detached_s']:.2e} s/call"
    )
    # And genuinely a null object, not a cheap allocation.
    assert SimClock().span("x") is NULL_SPAN

    # Tracing must not perturb the simulation itself.
    assert out["result_on"].total_s == out["result_off"].total_s
    assert out["result_on"].network_bytes == out["result_off"].network_bytes

    # Attribution quality on the traced run: the acceptance bar the CLI
    # gate enforces, asserted here against the same testbed.
    report = critical_path(out["tracer"], root="deploy")
    assert report is not None
    assert report.coverage >= 0.95
    assert abs(report.phase_sum() - report.total_s) < 1e-6
    assert abs(report.total_s - out["result_on"].total_s) < 1e-6

    spans = len(out["tracer"].finished_spans())
    print("\nExtension — telemetry plane overhead")
    print(
        format_table(
            ["Measurement", "Value"],
            [
                ("span call, detached", f"{out['per_call_detached_s'] * 1e9:,.0f} ns"),
                ("span call, attached", f"{out['per_call_attached_s'] * 1e9:,.0f} ns"),
                ("deploy wall, untraced", f"{out['deploy_wall_off_s'] * 1e3:.1f} ms"),
                ("deploy wall, traced", f"{out['deploy_wall_on_s'] * 1e3:.1f} ms"),
                ("spans recorded", f"{spans}"),
                ("makespan coverage", f"{report.coverage:.1%}"),
                ("phase sum - total", f"{report.phase_sum() - report.total_s:+.2e} s"),
            ],
        )
    )
    chain = " -> ".join(f"{s.name}[{s.share:.0%}]" for s in report.chain)
    print(f"blocking chain: {report.root_name} -> {chain}")
