"""Ablation: trace-driven prefetching vs pure demand fetching.

Gear fetches strictly on demand (§III-D2), which serializes every miss
into the container's critical path.  The `repro.gear.prefetch` extension
replays a recorded startup profile ahead of the task.  This ablation
measures three strategies on a cold client at 20 Mbps — where fetch
latency dominates — for the same container:

* demand-only (the paper's Gear);
* prefetch-all (replay the full profile before the task runs);
* prefetch-half (a byte-budgeted prefix).

Prefetching does not reduce bytes; it moves them.  The metric that
improves is the *task completion* portion of the run phase.
"""

from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.gear.prefetch import Prefetcher, TraceRecorder
from repro.workloads.tasks import task_for_category

from conftest import run_once

BANDWIDTH = 20


def test_ablation_prefetch(benchmark, corpus):
    generated = corpus.by_series["tomcat"][0]
    reference = f"tomcat.gear:{generated.tag}"

    def sweep():
        testbed = make_testbed(bandwidth_mbps=BANDWIDTH)
        publish_images(testbed, [generated], convert=True)

        # Record a profile from one observation deployment.
        recorder = TraceRecorder()
        observer = testbed.fresh_client()
        observer.gear_driver.pull_index(reference)
        container = observer.gear_driver.create_container(reference)
        observer.gear_driver.start_container(container)
        task = task_for_category(generated.category)
        task.run(testbed.clock, container.mount, generated.trace)
        recorder.record(reference, container.mount)

        results = {}
        for mode, budget in (
            ("demand-only", None),
            ("prefetch-all", -1),
            ("prefetch-half", 0),
        ):
            client = testbed.fresh_client()
            client.gear_driver.pull_index(reference)
            fresh = client.gear_driver.create_container(reference)
            client.gear_driver.start_container(fresh)
            prefetch_s = 0.0
            if mode != "demand-only":
                timer = testbed.clock.timer()
                profile = recorder.profile_for(reference)
                byte_budget = (
                    None if budget == -1 else profile.total_bytes // 2
                )
                Prefetcher(recorder).prefetch(
                    reference, fresh.mount, byte_budget=byte_budget
                )
                prefetch_s = timer.elapsed()
            timer = testbed.clock.timer()
            task.run(testbed.clock, fresh.mount, generated.trace)
            task_s = timer.elapsed()
            results[mode] = (prefetch_s, task_s, fresh.mount.fault_stats)
        return results

    results = run_once(benchmark, sweep)

    print(f"\nAblation — prefetching one tomcat deployment @ {BANDWIDTH} Mbps")
    print(
        format_table(
            ["Strategy", "Prefetch (s)", "Task (s)", "Remote fetches"],
            [
                (mode, f"{prefetch_s:.2f}", f"{task_s:.2f}",
                 stats.remote_fetches)
                for mode, (prefetch_s, task_s, stats) in results.items()
            ],
        )
    )

    demand_task = results["demand-only"][1]
    all_task = results["prefetch-all"][1]
    half_task = results["prefetch-half"][1]
    # Prefetch-all removes (nearly) every fetch from the task path.
    assert all_task < demand_task * 0.5
    assert half_task < demand_task
    # Total bytes moved are unchanged: same files, same wire cost — the
    # prefetch phase absorbs what the task used to pay.
    assert (
        results["prefetch-all"][0] + all_task
        < demand_task * 1.15
    )
