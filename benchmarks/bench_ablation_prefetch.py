"""Ablation: trace-driven prefetching vs pure demand fetching.

Gear fetches strictly on demand (§III-D2), which serializes every miss
into the container's critical path.  The `repro.gear.prefetch` extension
replays a recorded startup profile ahead of the task.  This ablation
measures three strategies on a cold client at 20 Mbps — where fetch
latency dominates — for the same container:

* demand-only (the paper's Gear);
* prefetch-all (replay the full profile before the task runs);
* prefetch-half (a byte-budgeted prefix);
* overlapped (the profile replays as a scheduler process *while* the
  task runs, sharing the link — no serial prefetch phase at all).

Prefetching does not reduce bytes; it moves them.  The metric that
improves is the *task completion* portion of the run phase.
"""

from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.common.clock import SimScheduler
from repro.gear.prefetch import Prefetcher, TraceRecorder
from repro.workloads.tasks import task_for_category

from conftest import run_once

BANDWIDTH = 20


def test_ablation_prefetch(benchmark, corpus):
    generated = corpus.by_series["tomcat"][0]
    reference = f"tomcat.gear:{generated.tag}"

    def sweep():
        testbed = make_testbed(bandwidth_mbps=BANDWIDTH)
        publish_images(testbed, [generated], convert=True)

        # Record a profile from one observation deployment.
        recorder = TraceRecorder()
        observer = testbed.fresh_client()
        observer.gear_driver.pull_index(reference)
        container = observer.gear_driver.create_container(reference)
        observer.gear_driver.start_container(container)
        task = task_for_category(generated.category)
        task.run(testbed.clock, container.mount, generated.trace)
        recorder.record(reference, container.mount)

        link_log = testbed.link.log
        results = {}
        for mode, budget in (
            ("demand-only", None),
            ("prefetch-all", -1),
            ("prefetch-half", 0),
            ("overlapped", -1),
        ):
            client = testbed.fresh_client()
            client.gear_driver.pull_index(reference)
            fresh = client.gear_driver.create_container(reference)
            client.gear_driver.start_container(fresh)
            bytes_before = link_log.total_bytes
            prefetch_s = 0.0
            if mode == "overlapped":
                profile = recorder.profile_for(reference)
                timer = testbed.clock.timer()
                with SimScheduler(testbed.clock) as scheduler:
                    client.gear_driver.spawn_prefetch(fresh, profile)
                    startup = scheduler.spawn(
                        task.run,
                        testbed.clock,
                        fresh.mount,
                        generated.trace,
                        name="startup",
                    )
                    scheduler.run()
                task_s = startup.finished_at - timer.start
            else:
                if mode != "demand-only":
                    timer = testbed.clock.timer()
                    profile = recorder.profile_for(reference)
                    byte_budget = (
                        None if budget == -1 else profile.total_bytes // 2
                    )
                    Prefetcher(recorder).prefetch(
                        reference, fresh.mount, byte_budget=byte_budget
                    )
                    prefetch_s = timer.elapsed()
                timer = testbed.clock.timer()
                task.run(testbed.clock, fresh.mount, generated.trace)
                task_s = timer.elapsed()
            results[mode] = (
                prefetch_s,
                task_s,
                fresh.mount.fault_stats,
                link_log.total_bytes - bytes_before,
            )
        return results

    results = run_once(benchmark, sweep)

    print(f"\nAblation — prefetching one tomcat deployment @ {BANDWIDTH} Mbps")
    print(
        format_table(
            ["Strategy", "Prefetch (s)", "Task (s)", "Remote fetches",
             "Wire (MB)"],
            [
                (mode, f"{prefetch_s:.2f}", f"{task_s:.2f}",
                 stats.remote_fetches, f"{wire / 1e6:.1f}")
                for mode, (prefetch_s, task_s, stats, wire)
                in results.items()
            ],
        )
    )

    demand_task = results["demand-only"][1]
    all_task = results["prefetch-all"][1]
    half_task = results["prefetch-half"][1]
    overlap_task = results["overlapped"][1]
    # Prefetch-all removes (nearly) every fetch from the task path.
    assert all_task < demand_task * 0.5
    assert half_task < demand_task
    # Total bytes moved are unchanged: same files, same wire cost — the
    # prefetch phase absorbs what the task used to pay.
    assert (
        results["prefetch-all"][0] + all_task
        < demand_task * 1.15
    )
    # Overlapping hides fetch latency behind compute with *no* serial
    # prefetch phase: faster end-to-end than demand-only...
    assert overlap_task < demand_task
    # ...and cheaper wall-clock than paying prefetch up front.
    assert overlap_task < results["prefetch-all"][0] + all_task
    # Single-flight coalescing: racing the task duplicates no bytes.
    assert results["overlapped"][3] == results["demand-only"][3]
