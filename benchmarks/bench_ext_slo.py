"""Extension: the readiness/SLO plane's overhead and fidelity.

The timeline sampler follows the span tracer's null-object discipline —
detached means *no process exists* and every ``record``/``sample`` call
is a free no-op — so wave code can stay unconditionally instrumented.
This benchmark certifies the three properties that make that safe:

* a detached sampler call costs well under the per-call budget;
* attaching the sampler (and the tracer) to a fleet wave leaves every
  virtual timestamp untouched and costs < 15% wall-clock overhead;
* time-to-ready is a real milestone: the readiness tail sits at or
  below the deploy tail for every percentile reported.
"""

import gc
import time

from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import make_timeline_sampler, publish_images
from repro.bench.reporting import format_table
from repro.net.topology import Cluster
from repro.obs import NULL_TIMELINE, dump_json

from conftest import run_once

#: Detached sampler calls per timing loop.
CALLS = 200_000
#: Wall-clock budget per detached ``record`` call.
DETACHED_BUDGET_S = 5e-6
#: Instrumented wave wall-clock ceiling relative to the plain wave.
INSTRUMENTED_WALL_CEILING = 1.15
#: Fleet shape: big enough that the wave dominates wall time.
CLIENTS = 8
BANDWIDTH_MBPS = 120


def _time_detached_calls(calls: int) -> float:
    """Wall seconds per detached sampler op (record is the hot one)."""
    record = NULL_TIMELINE.record
    start = time.perf_counter()
    for _ in range(calls):
        record("ready_s", 1.0, 0.5)
    return (time.perf_counter() - start) / calls


def _wave(corpus, *, instrumented: bool):
    """One fleet wave; returns (wall_s, wave_report, sampler_or_None)."""
    generated = corpus.by_series["nginx"][0]
    cluster = Cluster(CLIENTS, bandwidth_mbps=BANDWIDTH_MBPS)
    publish_images(cluster.registry_testbed, [generated], convert=True)
    sampler = None
    if instrumented:
        cluster.registry_testbed.attach_tracer()
        sampler = make_timeline_sampler(
            cluster.registry_testbed, seed="bench-slo"
        )
    # CPU time, not wall: the gate bounds the instrumentation's *work*,
    # and process_time is immune to machine scheduling pauses that make
    # ~50 ms wall measurements flap.  GC is paused so a collection
    # landing inside one variant doesn't masquerade as overhead.
    gc.collect()
    gc.disable()
    try:
        start = time.process_time()
        wave = cluster.deploy_wave(
            lambda node: deploy_with_gear(node.testbed, generated,
                                          clear_cache=True),
            sampler=sampler,
        )
        elapsed = time.process_time() - start
    finally:
        gc.enable()
    return elapsed, wave, sampler


def test_ext_slo_overhead_and_readiness_tails(benchmark, corpus):
    """Detached ops are free; instrumented waves are cheap and unmoved."""

    def measure():
        per_call_detached = _time_detached_calls(CALLS)
        # Best-of-three per variant damps scheduler warm-up and timer
        # noise without touching determinism (virtual results are
        # identical across repetitions anyway).
        wall_plain = []
        wall_inst = []
        plain = inst = sampler = None
        for _ in range(3):
            wall, plain, _ = _wave(corpus, instrumented=False)
            wall_plain.append(wall)
            wall, inst, sampler = _wave(corpus, instrumented=True)
            wall_inst.append(wall)
        return {
            "per_call_detached_s": per_call_detached,
            "wall_plain_s": min(wall_plain),
            "wall_instrumented_s": min(wall_inst),
            "plain": plain,
            "instrumented": inst,
            "sampler": sampler,
        }

    out = run_once(benchmark, measure)

    # Detached sampler ops must be negligible — the property that lets
    # wave code call record() unconditionally.
    assert out["per_call_detached_s"] < DETACHED_BUDGET_S, (
        f"detached sampler op costs {out['per_call_detached_s']:.2e} s/call"
    )

    # Virtual-time identity: attaching the sampler+tracer moves nothing.
    plain, inst = out["plain"], out["instrumented"]
    assert inst.latencies_s == plain.latencies_s
    assert inst.ready_s == plain.ready_s
    assert inst.makespan_s == plain.makespan_s
    assert inst.egress_bytes == plain.egress_bytes

    # Wall-clock overhead of full instrumentation stays bounded.
    ratio = out["wall_instrumented_s"] / out["wall_plain_s"]
    assert ratio < INSTRUMENTED_WALL_CEILING, (
        f"instrumented wave costs {ratio:.2f}x the plain wave"
    )

    # The sampler saw the wave, and its export is canonical.
    sampler = out["sampler"]
    assert sampler.stats.samples > 0
    assert len(sampler.series_for("ready_s")) == CLIENTS
    assert dump_json(sampler.as_dict()) == dump_json(sampler.as_dict())

    # Readiness tails sit at or below the deploy tails, per percentile
    # (p99.9 compares against the wave's worst client: its makespan tail).
    pairs = [
        ("p50", inst.ready_p50_s, inst.p50_s),
        ("p99", inst.ready_p99_s, inst.p99_s),
        ("p99.9", inst.ready_p999_s, max(inst.latencies_s)),
    ]
    for label, ready, deploy in pairs:
        assert ready <= deploy, f"{label}: ready {ready} > deploy {deploy}"

    print("\nExtension — readiness/SLO plane overhead")
    print(
        format_table(
            ["Measurement", "Value"],
            [
                ("sampler op, detached",
                 f"{out['per_call_detached_s'] * 1e9:,.0f} ns"),
                ("wave wall, plain", f"{out['wall_plain_s'] * 1e3:.1f} ms"),
                ("wave wall, instrumented",
                 f"{out['wall_instrumented_s'] * 1e3:.1f} ms"),
                ("wall overhead", f"{ratio:.2f}x"),
                ("timeline samples", f"{sampler.stats.samples}"),
                ("timeline points", f"{sampler.stats.points}"),
            ],
        )
    )
    print(
        format_table(
            ["Tail", "Ready (s)", "Deploy (s)"],
            [
                ("p50", f"{inst.ready_p50_s:.2f}", f"{inst.p50_s:.2f}"),
                ("p99", f"{inst.ready_p99_s:.2f}", f"{inst.p99_s:.2f}"),
                ("p99.9", f"{inst.ready_p999_s:.2f}",
                 f"{max(inst.latencies_s):.2f}"),
            ],
        )
    )
