"""Fig. 6: Docker→Gear conversion time per image series.

Paper: average conversion ≈46 s on the testbed HDD, proportional to
image size (per-file work dominates because image files are small), and
an SSD cuts the node series from 105 s to 36 s (−65.7%).

Absolute seconds here scale with the corpus's file-count scale (the
synthetic images hold ~40× fewer, larger files — see DESIGN.md); the
*shape* (time ∝ size, SSD ≫ HDD) is the reproduced result.
"""

import math

from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.storage.disk import SSD
from repro.workloads.series import SERIES

from conftest import run_once

#: Series re-converted on the SSD profile for the HDD/SSD comparison.
SSD_SAMPLE = ("node", "tomcat", "debian", "golang", "mysql")


def test_fig6_conversion_time(benchmark, corpus, published):
    _, reports = published  # HDD conversions happen at publish time

    def ssd_pass():
        testbed = make_testbed(registry_disk=SSD)
        sample = [g for g in corpus.images if g.spec.name in SSD_SAMPLE]
        return publish_images(testbed, sample, convert=True)

    ssd_reports = run_once(benchmark, ssd_pass)

    by_series = {}
    for report in reports:
        name = report.reference.split(":")[0]
        by_series.setdefault(name, []).append(report)

    print("\nFig. 6 — average conversion time per series (HDD), by size")
    rows = []
    for spec in SERIES:
        series_reports = by_series.get(spec.name)
        if not series_reports:
            continue
        avg_time = sum(r.duration_s for r in series_reports) / len(series_reports)
        avg_size = sum(r.image_bytes for r in series_reports) / len(series_reports)
        rows.append((spec.name, avg_size, avg_time))
    rows.sort(key=lambda r: r[1])
    print(
        format_table(
            ["Series", "Avg size (MB)", "Avg conversion (s)"],
            [(n, f"{s / 1e6:.0f}", f"{t:.2f}") for n, s, t in rows],
        )
    )
    overall = sum(t for _, __, t in rows) / len(rows)
    print(f"overall average conversion time: {overall:.2f} s (paper: ~46 s on HDD)")

    # Conversion time grows with image size (Spearman-ish check: the
    # largest quartile must take longer than the smallest).
    quarter = max(1, len(rows) // 4)
    small = sum(t for _, __, t in rows[:quarter]) / quarter
    large = sum(t for _, __, t in rows[-quarter:]) / quarter
    assert large > 2 * small

    # SSD speedup on the sampled series (paper: node −65.7%).
    ssd_by_series = {}
    for report in ssd_reports:
        name = report.reference.split(":")[0]
        ssd_by_series.setdefault(name, []).append(report.duration_s)
    print("\nHDD vs SSD conversion:")
    for name in SSD_SAMPLE:
        if name not in by_series or name not in ssd_by_series:
            continue
        hdd = sum(r.duration_s for r in by_series[name]) / len(by_series[name])
        ssd = sum(ssd_by_series[name]) / len(ssd_by_series[name])
        print(f"  {name:<10} HDD {hdd:6.2f} s   SSD {ssd:6.2f} s   "
              f"(-{100 * (1 - ssd / hdd):.1f}%)")
        assert ssd < 0.55 * hdd
