"""Extension: multi-tier edge/P2P distribution of Gear files.

The paper's fleet experiments route every byte through the registry
uplink.  This extension inserts the edge tier (:mod:`repro.net.edge`):
nodes peer-serve already-cached Gear files within a site, a gossip-fed
tracker maps fingerprints to peers, and fetches walk the
peer → site-cache → registry failover chain.

The sweeps report what the tier buys and what adversity costs:

* **registry-egress reduction** vs. the single-tier topology on a
  rolling version upgrade (zero churn) — the headline claim, ≥ 40 %;
* **deploy p50/p99 vs. churn rate** — stale tracker entries and departed
  peers cost bounded failovers, never failed deploys;
* **p50/p99 vs. WAN bandwidth** — the thinner the uplink, the more the
  LAN tier matters;
* **p50/p99 vs. fleet size** — peer capacity grows with the fleet while
  registry load stays flat.

Every cell replays deterministically; one churn cell is double-run and
compared field-for-field as a regression guard.
"""

from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import publish_images
from repro.bench.reporting import format_table, pct
from repro.net.topology import Cluster, EdgeCluster

from conftest import QUICK, run_once

FLEET_SIZES = (4, 8) if QUICK else (8, 16, 32)
CHURN_RATES = (0.0, 2.0) if QUICK else (0.0, 1.0, 4.0)
WAN_MBPS = (100.0, 904.0) if QUICK else (20.0, 100.0, 904.0)
UPGRADE_SERIES = ("nginx",) if QUICK else ("nginx", "tomcat")
EDGE_CLIENTS = 4 if QUICK else 8


def _rolling_upgrade(cluster, images, concurrency):
    """Deploy each version fleet-wide in order; per-version wave list."""
    publish_images(cluster.registry_testbed, images, convert=True)
    waves = []
    for generated in images:
        waves.append(
            cluster.deploy_wave(
                lambda node, gen=generated: deploy_with_gear(
                    node.testbed, gen
                ),
                concurrency=concurrency,
            )
        )
    return waves


def test_ext_edge_egress_reduction(benchmark, corpus):
    """Zero-churn rolling upgrades: WAN egress vs. the single-tier fleet.

    The invariant the topology exists for: with the peer tier quiet but
    enabled, registry egress over the upgrade trajectory drops ≥ 40 %.
    """
    clients = EDGE_CLIENTS
    concurrency = max(1, clients // 4)

    def measure():
        rows = {}
        for series in UPGRADE_SERIES:
            images = corpus.by_series[series]
            flat = Cluster(clients, bandwidth_mbps=200.0)
            flat_waves = _rolling_upgrade(flat, images, concurrency)
            edge = EdgeCluster(
                clients, bandwidth_mbps=200.0, seed="bench-edge"
            )
            edge_waves = _rolling_upgrade(edge, images, concurrency)
            rows[series] = {
                "flat_egress": sum(w.egress_bytes for w in flat_waves),
                "edge_egress": sum(w.egress_bytes for w in edge_waves),
                "peer_hits": sum(w.peer_hits for w in edge_waves),
                "site_hits": sum(w.site_hits for w in edge_waves),
                "flat_p99": max(w.p99_s for w in flat_waves),
                "edge_p99": max(w.p99_s for w in edge_waves),
                "degraded": sum(w.degraded for w in edge_waves),
            }
        return rows

    rows = run_once(benchmark, measure)

    print("\nExtension — edge tier registry-egress reduction (rolling upgrade)")
    table = []
    for series, row in rows.items():
        reduction = 1.0 - row["edge_egress"] / row["flat_egress"]
        table.append(
            (
                series,
                f"{row['flat_egress'] / 1e6:.2f}",
                f"{row['edge_egress'] / 1e6:.2f}",
                pct(reduction),
                str(row["peer_hits"]),
                str(row["site_hits"]),
                f"{row['flat_p99']:.2f}",
                f"{row['edge_p99']:.2f}",
            )
        )
        assert row["degraded"] == 0
        assert reduction >= 0.40, (series, reduction)
    print(
        format_table(
            ["Series", "Flat MB", "Edge MB", "Saved", "Peer hits",
             "Site hits", "Flat p99 (s)", "Edge p99 (s)"],
            table,
        )
    )


def _edge_wave(clients, *, churn=0.0, wan=200.0, seed="bench-edge", corpus):
    generated = corpus.by_series["nginx"][0]
    cluster = EdgeCluster(
        clients,
        bandwidth_mbps=wan,
        churn_rate_per_s=churn,
        seed=seed,
    )
    publish_images(cluster.registry_testbed, [generated], convert=True)
    return cluster.deploy_wave(
        lambda node: deploy_with_gear(node.testbed, generated),
        concurrency=max(1, clients // 4),
    )


def test_ext_edge_churn_sweep(benchmark, corpus):
    """Deploy latency vs. churn rate; one cell double-run for determinism."""

    def sweep():
        return {
            rate: _edge_wave(EDGE_CLIENTS, churn=rate, corpus=corpus)
            for rate in CHURN_RATES
        }

    grid = run_once(benchmark, sweep)

    print("\nExtension — edge deploys under churn (events/s)")
    print(
        format_table(
            ["Churn", "p50 (s)", "p99 (s)", "Peer hits", "Stale",
             "Failovers", "Leaves", "Joins", "Degraded"],
            [
                (
                    f"{rate:g}",
                    f"{wave.p50_s:.2f}",
                    f"{wave.p99_s:.2f}",
                    str(wave.peer_hits),
                    str(wave.stale_resolutions),
                    str(wave.failovers),
                    str(wave.leaves),
                    str(wave.joins),
                    str(wave.degraded),
                )
                for rate, wave in grid.items()
            ],
        )
    )
    for wave in grid.values():
        assert wave.degraded == 0
    # Determinism guard: replay the highest-churn cell and compare every
    # report field.
    rate = CHURN_RATES[-1]
    replay = _edge_wave(EDGE_CLIENTS, churn=rate, corpus=corpus)
    assert replay.as_dict() == grid[rate].as_dict()


def test_ext_edge_wan_sweep(benchmark, corpus):
    """Deploy latency vs. WAN bandwidth: the LAN tier absorbs the pinch."""

    def sweep():
        return {
            wan: _edge_wave(EDGE_CLIENTS, wan=wan, corpus=corpus)
            for wan in WAN_MBPS
        }

    grid = run_once(benchmark, sweep)

    print("\nExtension — edge deploys vs. WAN bandwidth (Mbps)")
    print(
        format_table(
            ["WAN", "p50 (s)", "p99 (s)", "Offload", "Egress MB",
             "Saved MB", "Degraded"],
            [
                (
                    f"{wan:g}",
                    f"{wave.p50_s:.2f}",
                    f"{wave.p99_s:.2f}",
                    pct(wave.offload_rate),
                    f"{wave.egress_bytes / 1e6:.2f}",
                    f"{wave.egress_saved_bytes / 1e6:.2f}",
                    str(wave.degraded),
                )
                for wan, wave in grid.items()
            ],
        )
    )
    for wave in grid.values():
        assert wave.degraded == 0


def test_ext_edge_fleet_sweep(benchmark, corpus):
    """Deploy latency vs. fleet size: registry egress stays sublinear."""

    def sweep():
        return {
            clients: _edge_wave(clients, corpus=corpus)
            for clients in FLEET_SIZES
        }

    grid = run_once(benchmark, sweep)

    print("\nExtension — edge deploys vs. fleet size")
    print(
        format_table(
            ["Clients", "p50 (s)", "p99 (s)", "Peer hits", "Offload",
             "Egress MB", "Degraded"],
            [
                (
                    str(clients),
                    f"{wave.p50_s:.2f}",
                    f"{wave.p99_s:.2f}",
                    str(wave.peer_hits),
                    pct(wave.offload_rate),
                    f"{wave.egress_bytes / 1e6:.2f}",
                    str(wave.degraded),
                )
                for clients, wave in grid.items()
            ],
        )
    )
    for wave in grid.values():
        assert wave.degraded == 0
    # Peer offload grows with fleet size: the biggest fleet must offload
    # at least as well as the smallest.
    small = grid[FLEET_SIZES[0]]
    large = grid[FLEET_SIZES[-1]]
    assert large.offload_rate >= small.offload_rate
