#!/usr/bin/env python
"""Emit the checked-in perf-trajectory artifacts (``BENCH_ext_*.json``).

ROADMAP.md notes the extension benchmarks track the repo's performance
trajectory but that no ``BENCH_*.json`` artifacts are checked in.  This
script fixes that: it runs one small, fully deterministic scenario per
extension and writes a canonical JSON artifact for each into
``benchmarks/artifacts/``.  Every number in the artifacts is *simulated*
(virtual seconds, modeled bytes) — never wall clock — so reruns are
byte-identical and a diff against the committed artifact is a real
regression signal, not noise.

``scripts/check.sh`` regenerates the artifacts and fails if they drift
from the committed copies: a PR that changes deploy times, egress, or
failover accounting must commit the refreshed artifacts alongside the
code, which is exactly how the trajectory stays tracked in-repo.

Usage::

    PYTHONPATH=src python benchmarks/artifacts.py [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import sys

from repro import cli
from repro.bench.deploy import deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.net.faults import FaultPlan, OutageWindow
from repro.net.resilience import RetryPolicy
from repro.workloads.corpus import CorpusBuilder, CorpusConfig

DEFAULT_OUT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")

#: CLI-backed artifacts: each extension's scenario is the same small
#: configuration the ``scripts/check.sh`` determinism gates double-run,
#: so run-to-run byte-identity is already certified before the numbers
#: land in an artifact.
CLI_SCENARIOS = {
    "fleet": [
        "deploy", "--series", "nginx", "--versions", "2", "--scale", "0.2",
        "--clients", "8", "--bandwidth", "100", "--json",
    ],
    "crash": [
        "crash", "--series", "nginx", "--versions", "1", "--scale", "0.2",
        "--target", "nginx", "--crash-seed", "11", "--json",
    ],
    "ha": [
        "ha", "--series", "nginx", "--versions", "2", "--scale", "0.2",
        "--clients", "6", "--concurrency", "3", "--strategy", "p2c",
        "--ha-seed", "11", "--json",
    ],
    "obs": [
        "trace", "--series", "nginx", "--versions", "1", "--scale", "0.2",
        "--target", "nginx", "--seed", "11", "--json",
    ],
    "edge": [
        "edge", "--series", "nginx", "--versions", "2", "--scale", "0.2",
        "--target", "nginx", "--clients", "8", "--edge-seed", "11", "--json",
    ],
    "faas": [
        "faas", "--series", "nginx", "--versions", "2", "--scale", "0.2",
        "--functions", "10", "--duration", "8", "--rate", "4",
        "--nodes", "4", "--spike-start", "3", "--spike-len", "3",
        "--outage-start", "4", "--outage-len", "1.5",
        "--scenario", "spike", "spike+outage",
        "--faas-seed", "11", "--json",
    ],
    "chunk": [
        "chunks", "--clients", "8", "--big-mib", "4",
        "--chunk-seed", "11", "--json",
    ],
    "slo": [
        "slo", "--series", "nginx", "--versions", "2", "--scale", "0.2",
        "--target", "nginx", "--clients", "6", "--bandwidth", "200",
        "--slo-seed", "11", "--json",
    ],
    # The perf command's JSON carries only deterministic simulation
    # fields (events, virtual seconds, modeled bytes) plus the recorded
    # pre-refactor baseline; wall-clock throughput never enters the
    # artifact, so it stays byte-stable across machines.
    "speed": [
        "perf", "--scale", "0.2", "--clients", "256", "--transfers", "4",
        "--wave-clients", "64", "--json",
    ],
}


def _run_cli(argv) -> dict:
    """Run a ``repro.cli`` command in-process; parse its JSON report."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = cli.main(list(argv))
    if code != 0:
        raise SystemExit(
            f"artifact scenario failed (exit {code}): {' '.join(argv)}"
        )
    return json.loads(buffer.getvalue())


def _resilience_report() -> dict:
    """One hostile-wire cell (no CLI surface for this extension).

    Mirrors ``bench_ext_resilience.py``: drops + corruption + a 2 s
    registry outage, and the invariant that faults are paid for in
    virtual time, never in correctness.
    """
    corpus = CorpusBuilder(
        CorpusConfig(
            seed=7, file_scale=0.2, size_scale=0.2,
            series_names=("nginx",), versions_cap=2,
        )
    ).build()
    sample = corpus.by_series["nginx"]
    plan = FaultPlan(
        seed="artifact-resilience",
        drop_rate=0.05,
        corrupt_rate=0.05,
        timeout_s=0.2,
        outages=(OutageWindow(start_s=0.0, duration_s=2.0),),
        targets=("gear-registry",),
    )
    policy = RetryPolicy(max_attempts=6, base_backoff_s=0.1,
                         max_backoff_s=4.0, deadline_s=60.0, budget_s=600.0)
    testbed = make_testbed(fault_plan=plan, retry_policy=policy)
    testbed.disarm_faults()
    publish_images(testbed, sample, convert=True)
    testbed.arm_faults()
    report = {"drop_rate": 0.05, "corrupt_rate": 0.05, "outage_s": 2.0,
              "images": len(sample), "total_s": 0.0, "retries": 0,
              "errors": 0, "degraded": 0}
    for generated in sample:
        result = deploy_with_gear(testbed, generated)
        report["total_s"] += result.total_s
        report["retries"] += result.retries
        report["errors"] += result.errors
        report["degraded"] += int(result.degraded)
    report["faults_injected"] = testbed.link.fault_stats.total_faults
    if report["degraded"]:
        raise SystemExit("resilience artifact scenario degraded")
    return report


def write_artifacts(out_dir: str) -> list:
    os.makedirs(out_dir, exist_ok=True)
    reports = {name: _run_cli(argv) for name, argv in CLI_SCENARIOS.items()}
    reports["resilience"] = _resilience_report()
    written = []
    for name in sorted(reports):
        path = os.path.join(out_dir, f"BENCH_ext_{name}.json")
        payload = {
            "scenario": CLI_SCENARIOS.get(name, ["(inline)"]),
            "report": reports[name],
        }
        with open(path, "w") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True))
            handle.write("\n")
        written.append(path)
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default=DEFAULT_OUT_DIR)
    args = parser.parse_args(argv)
    for path in write_artifacts(args.out_dir):
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
