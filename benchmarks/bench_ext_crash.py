"""Extension: crash-consistency of the client-side Gear store.

Not in the paper — Gear's three-level store (§III-D1) is described for a
client that never dies mid-admission.  This sweep kills a deployment at
every instrumented crash point (mid-fetch, post-fetch, mid-commit,
mid-link), runs the journal-driven fsck, resumes, and measures what the
crash machinery costs and guarantees:

1. **golden resume equivalence** — the resumed container's filesystem is
   byte-identical (logical-content digest) to an uncrashed control run,
   at every crash point, warm or cold cache;
2. **no re-fetch of committed work** — a file the journal had committed
   before the crash is never downloaded again on resume;
3. recovery is *cheap*: the fsck pass costs re-verification of the few
   uncommitted entries, not a rescan of the full image.

Cells report recovery time and the resumed run's byte savings relative
to a from-scratch deployment of the same image.
"""

from repro.bench.deploy import deploy_with_gear_resumable
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table
from repro.net.faults import CrashPlan, CrashPoint

from conftest import QUICK, run_once

#: Cache states swept: "cold" crashes the first-ever deployment; "warm"
#: deploys a sibling version first so the pool already holds shared files
#: when the crash hits.
CACHE_STATES = ("cold", "warm")

#: Occurrence index of the crash point within the doomed run.  Late
#: enough that real work (fetches, links) is at risk, early enough that
#: QUICK-mode images still reach it.
CRASH_OP = 1 if QUICK else 3


def _run_cell(sample, point: CrashPoint, cache_state: str) -> dict:
    """Crash one deployment at ``point``, fsck, resume; measure it all."""
    victim = sample[0]
    warmup = sample[1] if len(sample) > 1 else None

    def build_testbed():
        testbed = make_testbed()
        publish_images(testbed, sample, convert=True)
        if cache_state == "warm" and warmup is not None:
            deploy_with_gear_resumable(testbed, warmup, None)
        return testbed

    # Control: same testbed recipe, no crash plan.
    control = deploy_with_gear_resumable(build_testbed(), victim, None)

    plan = CrashPlan(
        point=point, seed=f"bench-{cache_state}", op_index=CRASH_OP
    )
    out = deploy_with_gear_resumable(build_testbed(), victim, plan)
    recovery = out.recovery.as_dict() if out.recovery is not None else {}
    saved_bytes = control.result.network_bytes - out.result.network_bytes
    return {
        "crashed": out.crashed,
        "crash_at_s": out.crash_at_s,
        "crashed_network_bytes": out.crashed_network_bytes,
        "recovery_s": out.recovery_s,
        "repairs": out.recovery.repairs if out.recovery is not None else 0,
        "recovered_bytes": recovery.get("recovered_bytes", 0),
        "torn_dropped": recovery.get("torn_dropped", 0),
        "refetched_committed": out.refetched_committed,
        "resumed_network_bytes": out.result.network_bytes,
        "control_network_bytes": control.result.network_bytes,
        "saved_bytes": saved_bytes,
        "equivalent": out.fs_digest == control.fs_digest,
    }


def test_ext_crash_sweep(benchmark, corpus):
    sample = corpus.by_series["nginx"][:2]

    def sweep():
        grid = {}
        for cache_state in CACHE_STATES:
            for point in CrashPoint:
                grid[(cache_state, point.value)] = _run_cell(
                    sample, point, cache_state
                )
        return grid

    grid = run_once(benchmark, sweep)

    print("\nExt — crash/fsck/resume at every crash point "
          f"(nginx, crash op {CRASH_OP})")
    rows = []
    for (cache_state, point), cell in sorted(grid.items()):
        rows.append((
            cache_state,
            point,
            f"{cell['recovery_s'] * 1e3:.2f}",
            str(cell["repairs"]),
            f"{cell['saved_bytes'] / 1e3:.1f}",
            str(cell["refetched_committed"]),
            "ok" if cell["equivalent"] else "FAIL",
        ))
    print(format_table(
        ["Cache", "Point", "fsck (ms)", "Repairs", "Saved (KB)",
         "Refetched", "Equivalent"],
        rows,
    ))

    for key, cell in grid.items():
        cache_state, point = key
        # Every cell actually crashed (the op index was reachable) and
        # the golden invariant held: byte-identical resumed fs, zero
        # re-fetches of work the journal had already committed.
        assert cell["crashed"], f"{key}: crash never fired"
        assert cell["equivalent"], f"{key}: resumed fs diverged from control"
        assert cell["refetched_committed"] == 0, (
            f"{key}: resume re-fetched committed files"
        )
        # Resuming against the repaired store is never more expensive on
        # the wire than starting over.
        assert cell["resumed_network_bytes"] <= cell["control_network_bytes"]
        # Only a mid-fetch crash leaves a torn partial to drop.
        if point == CrashPoint.MID_FETCH.value:
            assert cell["torn_dropped"] >= 1
        else:
            assert cell["torn_dropped"] == 0
        # Post-fetch and mid-commit crashes leave intact bytes for fsck
        # to promote — recovery saves those fetches outright.
        if point in (CrashPoint.POST_FETCH.value, CrashPoint.MID_COMMIT.value):
            assert cell["recovered_bytes"] > 0
