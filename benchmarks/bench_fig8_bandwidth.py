"""Fig. 8: bytes transferred during deployment, per category.

Paper: compared to Docker (full image download), Gear without a local
cache transfers 29.1% of the bytes; with a warm shared cache only 16.2%.
Common files across a series reach 44.4% of accessed files (§V-D).
"""

from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table, pct
from repro.workloads.series import CATEGORIES

from conftest import QUICK, run_once

#: Versions deployed per series; 3 exercises cross-version sharing while
#: keeping the sweep tractable.
VERSIONS_PER_SERIES = 2 if QUICK else 3


def test_fig8_bandwidth_usage(benchmark, corpus):
    sample = []
    for images in corpus.by_series.values():
        sample.extend(images[:VERSIONS_PER_SERIES])

    def sweep():
        testbed = make_testbed()
        publish_images(testbed, sample, convert=True)
        per_category = {}
        # Docker and Gear-no-cache: fresh client per deployment.
        for generated in sample:
            docker = deploy_with_docker(testbed.fresh_client(), generated)
            gear_nc = deploy_with_gear(
                testbed.fresh_client(), generated, clear_cache=True
            )
            bucket = per_category.setdefault(
                generated.category, {"docker": 0, "nc": 0, "cache": 0}
            )
            bucket["docker"] += docker.network_bytes
            bucket["nc"] += gear_nc.network_bytes
        # Gear with cache: one long-lived client deploys everything.
        cached_client = testbed.fresh_client()
        for generated in sample:
            gear_c = deploy_with_gear(cached_client, generated)
            per_category[generated.category]["cache"] += gear_c.network_bytes
        return per_category

    per_category = run_once(benchmark, sweep)

    print("\nFig. 8 — bytes transferred during deployment (vs Docker)")
    rows = []
    totals = {"docker": 0, "nc": 0, "cache": 0}
    for category in CATEGORIES:
        if category not in per_category:
            continue
        bucket = per_category[category]
        for key in totals:
            totals[key] += bucket[key]
        rows.append(
            (
                category,
                f"{bucket['docker'] / 1e9:.2f}",
                pct(bucket["nc"] / bucket["docker"]),
                pct(bucket["cache"] / bucket["docker"]),
            )
        )
    nc_ratio = totals["nc"] / totals["docker"]
    cache_ratio = totals["cache"] / totals["docker"]
    rows.append(("All", f"{totals['docker'] / 1e9:.2f}", pct(nc_ratio),
                 pct(cache_ratio)))
    print(
        format_table(
            ["Category", "Docker (GB)", "Gear no-cache", "Gear cached"], rows
        )
    )
    print(f"paper: no-cache 29.1%, cached 16.2%")

    assert 0.18 < nc_ratio < 0.42
    assert cache_ratio < nc_ratio * 0.75
    assert 0.08 < cache_ratio < 0.28
