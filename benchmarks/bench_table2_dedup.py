"""Table II: storage usage and object count per dedup granularity.

Paper (971 images):
    No dedup      370 GB        971 objects
    Layer-level    98 GB      5,670 objects
    File-level     47 GB    639,585 objects
    Chunk-level    43 GB 10,478,675 objects
Reductions vs no dedup: 74% / 87% / 88%; chunk-level has 16.4× the
objects of file-level for ~2% more saving — the motivation for managing
remote images at file granularity (§II-D).
"""

from repro.analysis import compute_dedup_table
from repro.bench.reporting import format_table, gb, pct

from conftest import QUICK, run_once


def test_table2_dedup_granularity(benchmark, corpus):
    table = run_once(benchmark, lambda: compute_dedup_table(corpus.docker_images()))

    print("\nTable II — storage usage and object number by dedup granularity")
    print(
        format_table(
            ["Granularity", "Storage (GB)", "Objects", "Reduction vs none"],
            [
                (name, gb(storage), f"{objects:,}",
                 pct(1 - storage / table.none.storage_bytes))
                for name, storage, objects in table.rows()
            ],
        )
    )
    print(
        f"chunk-level object blowup vs file-level: "
        f"{table.chunk_object_blowup:.1f}x (paper: 16.4x)"
    )

    # The paper's qualitative claims must hold on the reproduction.
    reductions = table.reduction_vs_none()
    assert 0.60 < reductions["layer"] < 0.85
    assert reductions["file"] > reductions["layer"] + 0.08
    assert reductions["chunk"] >= reductions["file"]
    assert reductions["chunk"] - reductions["file"] < 0.05
    assert table.chunk_object_blowup > 1.5
    if not QUICK:
        # Full-corpus calibration targets (paper: 74% / 87% / 88%).
        assert abs(reductions["layer"] - 0.74) < 0.05
        assert abs(reductions["file"] - 0.87) < 0.04
        assert abs(reductions["chunk"] - 0.88) < 0.04
        assert table.chunk_object_blowup > 3.0
