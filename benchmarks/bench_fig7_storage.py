"""Fig. 7: registry storage saving of Gear over Docker.

Paper: per-category savings — Database 52.2%, Web Component 60.9%,
Application Platform 58.6%, Others 46.7%, Linux Distro 20.5%, Language
32.8% (Fig. 7a); storing all top-50 series together saves 53.7%, and all
Gear indexes total ≈1.1% of the Gear footprint (Fig. 7b).
"""

from repro.bench.reporting import format_table, gb, pct
from repro.bench.storage import (
    category_savings,
    compare_storage,
    compare_storage_by_series,
)
from repro.workloads.series import CATEGORIES, SERIES

from conftest import QUICK, run_once

PAPER_7A = {
    "Linux Distro": 0.205,
    "Language": 0.328,
    "Database": 0.522,
    "Web Component": 0.609,
    "Application Platform": 0.586,
    "Others": 0.467,
}


def test_fig7a_per_category_saving(benchmark, corpus):
    by_series = run_once(
        benchmark, lambda: compare_storage_by_series(corpus.by_series)
    )
    savings = category_savings(
        by_series, {spec.name: spec.category for spec in SERIES}
    )

    print("\nFig. 7(a) — registry storage saving per category")
    print(
        format_table(
            ["Category", "Gear saving", "Paper"],
            [
                (category, pct(savings[category]), pct(PAPER_7A[category]))
                for category in CATEGORIES
                if category in savings
            ],
        )
    )

    # Shape: application categories save far more than base-image ones.
    assert savings["Linux Distro"] < savings["Language"]
    assert savings["Language"] < savings["Database"]
    assert savings["Linux Distro"] < 0.35
    if not QUICK:
        # Full-corpus calibration: within 8 points of the paper per
        # category (version-capped quick corpora dedup less).
        for category in ("Database", "Web Component", "Application Platform"):
            assert savings[category] > 0.45
        for category, target in PAPER_7A.items():
            if category in savings:
                assert abs(savings[category] - target) < 0.08, category


def test_fig7b_whole_registry_saving(benchmark, corpus):
    whole = run_once(benchmark, lambda: compare_storage("top-50", corpus.images))

    print("\nFig. 7(b) — whole-registry footprint, all series together")
    print(
        format_table(
            ["Registry", "Stored (GB)"],
            [
                ("Docker (layer-level)", gb(whole.docker_bytes)),
                ("Gear files", gb(whole.gear_file_bytes)),
                ("Gear indexes", gb(whole.gear_index_bytes)),
                ("Gear total", gb(whole.gear_bytes)),
            ],
        )
    )
    print(
        f"saving: {pct(whole.saving_fraction)} (paper: 53.7%); "
        f"index share of Gear bytes: {pct(whole.index_share)} (paper: ~1.1%)"
    )

    assert whole.index_share < 0.05
    if QUICK:
        assert 0.20 < whole.saving_fraction < 0.70
    else:
        assert 0.45 < whole.saving_fraction < 0.70
