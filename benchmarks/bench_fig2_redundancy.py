"""Fig. 2: redundancy among necessary data within each image series.

Paper: Database 56.0% and Application Platform 57.4% are the highest;
the average over all 50 series is 39.9%.  High redundancy is the case
for a shared local file cache (§II-D): deploying a new version next to
old ones only needs the non-redundant share of its necessary data.
"""

from repro.analysis import category_redundancy
from repro.bench.reporting import format_table, pct
from repro.workloads.series import CATEGORIES

from conftest import run_once


def test_fig2_necessary_data_redundancy(benchmark, corpus):
    summary = run_once(benchmark, lambda: category_redundancy(corpus))

    print("\nFig. 2 — redundancy of necessary launch data within series")
    rows = [
        (category, pct(summary[category]))
        for category in CATEGORIES
        if category in summary
    ]
    rows.append(("Average", pct(summary["Average"])))
    print(format_table(["Category", "Redundancy"], rows))

    # Shape assertions: the application-heavy categories lead, the
    # base-image categories trail, and everything is meaningfully > 0.
    assert summary["Database"] > summary["Linux Distro"]
    assert summary["Application Platform"] > summary["Linux Distro"]
    assert summary["Database"] > 0.4
    assert summary["Application Platform"] > 0.4
    assert summary["Linux Distro"] < 0.35
    assert 0.2 < summary["Average"] < 0.7
