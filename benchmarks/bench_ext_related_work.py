"""Extension: the §VI design-space table — storage AND bandwidth together.

The paper positions Gear against two families of related work:
deduplicating registries (DupHunter) save storage but "neither reduce
bandwidth demands nor accelerate the deployment of a container", and
layer restructuring (Skourtis et al.) improves layer-level sharing but
keeps the whole-image pull model.  This benchmark measures all four
points of the design space on the same version chain: registry bytes
stored, bytes a cold deployment downloads, and (where modelled) the
registry-side serving cost.
"""

from repro.baselines.duphunter import DupHunterRegistry
from repro.baselines.layerpack import pack_layers
from repro.bench.deploy import deploy_with_docker, deploy_with_gear
from repro.bench.environment import make_testbed, publish_images
from repro.bench.reporting import format_table, pct
from repro.common.clock import SimClock

from conftest import run_once

SERIES_UNDER_TEST = "tomcat"
DEPLOY_VERSIONS = 4


def test_ext_related_work_design_space(benchmark, corpus):
    chain = corpus.by_series[SERIES_UNDER_TEST]
    sample = chain[:DEPLOY_VERSIONS]

    def sweep():
        # -- Docker and Gear on the standard testbed -------------------
        testbed = make_testbed()
        publish_images(testbed, chain, convert=True)
        docker_storage = testbed.docker_registry.stored_bytes
        gear_storage = (
            testbed.gear_registry.stored_bytes
            + sum(
                testbed.docker_registry.get_manifest(
                    f"{SERIES_UNDER_TEST}.gear:{g.tag}"
                ).layer_sizes[0]
                for g in chain
            )
        )
        docker_wire = 0
        gear_wire = 0
        for generated in sample:
            docker_wire += deploy_with_docker(
                testbed.fresh_client(), generated
            ).network_bytes
            gear_wire += deploy_with_gear(
                testbed.fresh_client(), generated, clear_cache=True
            ).network_bytes

        # -- DupHunter: file-dedup storage, whole-image pulls ------------
        clock = SimClock()
        duphunter = DupHunterRegistry(clock)
        for generated in chain:
            duphunter.push_image(generated.image)
        duphunter_storage = duphunter.stored_bytes
        duphunter_wire = 0
        for generated in sample:
            manifest = duphunter.get_manifest(generated.reference)
            for digest in manifest.layer_digests:
                _, wire = duphunter.serve_layer(digest)
                duphunter_wire += wire

        # -- Layer restructuring: regrouped layers, whole-layer pulls ----
        packed = pack_layers(
            [g.image for g in chain], min_layer_bytes=2 * 1024 * 1024
        )
        # A cold client downloads every packed layer its image needs; on
        # this single-series chain that is the whole packed store for the
        # first deployment plus residuals for the rest — approximate the
        # sweep's cold-pull volume by the packed bytes reachable from the
        # sampled images (upper-bounded by the full store).
        layerpack_storage = packed.stored_bytes
        # Cold per-image pulls: each fresh client downloads all packed
        # layers its image references (no cross-client reuse, matching
        # the fresh-client protocol used for the other systems).
        layerpack_wire = sum(
            packed.bytes_per_image[i] for i in range(len(sample))
        )

        return {
            "docker": (docker_storage, docker_wire),
            "duphunter": (duphunter_storage, duphunter_wire),
            "layer-restructured": (layerpack_storage, layerpack_wire),
            "gear": (gear_storage, gear_wire),
        }

    results = run_once(benchmark, sweep)

    docker_storage, docker_wire = results["docker"]
    print(f"\nExtension — §VI design space on the {SERIES_UNDER_TEST} chain "
          f"(storage: all versions; wire: {DEPLOY_VERSIONS} cold deploys)")
    print(
        format_table(
            ["System", "Registry (MB)", "vs Docker", "Wire (MB)", "vs Docker"],
            [
                (
                    system,
                    f"{storage / 1e6:.1f}",
                    pct(storage / docker_storage),
                    f"{wire / 1e6:.1f}",
                    pct(wire / docker_wire),
                )
                for system, (storage, wire) in results.items()
            ],
        )
    )

    duphunter_storage, duphunter_wire = results["duphunter"]
    gear_storage, gear_wire = results["gear"]
    # DupHunter: storage ≈ Gear's, bandwidth ≈ Docker's (the §VI claim).
    assert duphunter_storage < docker_storage * 0.8
    assert duphunter_wire > docker_wire * 0.95
    # Gear: both at once.
    assert gear_storage < docker_storage * 0.8
    assert gear_wire < docker_wire * 0.5
    # Restructured layers sit between Docker and file-level on storage.
    layerpack_storage, _ = results["layer-restructured"]
    assert layerpack_storage < docker_storage
