"""Extension: overload-robust FaaS tier under invocation spikes.

The paper motivates Gear with serverless cold starts (§I); this
extension drives the three-tier chain (:mod:`repro.net.faas`) with a
Zipf-popular, Poisson/bursty invocation stream and reports what the
shared cache tier buys and what adversity costs:

* **cold/warm tails under a 10x spike** — steady vs. spike vs. a tier
  outage landing mid-spike; every scenario must finish with zero failed
  invocations and zero duplicate upstream fetches (the stampede
  invariant);
* **registry-egress reduction** vs. a tierless fleet on the identical
  stream — what the shared tier absorbs;
* **deterministic replay** — the spike+outage cell is double-run and
  compared field-for-field as a regression guard.
"""

from repro.bench.environment import make_faas_testbed, publish_images
from repro.bench.reporting import format_table, pct
from repro.net.faas import FAAS_TIER_ENDPOINT, FaasPlatform
from repro.net.faults import FaultPlan, OutageWindow
from repro.workloads.schedule import BurstWindow, ScheduleBuilder

from conftest import QUICK, run_once

FUNCTIONS = 16 if QUICK else 32
DURATION_S = 12.0 if QUICK else 20.0
RATE_PER_S = 4.0 if QUICK else 6.0
NODES = 4 if QUICK else 6
SPIKE = BurstWindow(start_s=DURATION_S * 0.4, duration_s=DURATION_S * 0.2,
                    factor=10.0)
OUTAGE = OutageWindow(start_s=DURATION_S * 0.45, duration_s=DURATION_S * 0.1)


def _stream(corpus, bursts=()):
    return ScheduleBuilder(corpus, seed="bench-faas").invocation_stream(
        duration_s=DURATION_S,
        rate_per_s=RATE_PER_S,
        functions=FUNCTIONS,
        skew=1.0,
        bursts=bursts,
    )


def _referenced_images(corpus, stream):
    references = {invocation.image.reference for invocation in stream}
    return [
        image for image in corpus.images if image.reference in references
    ]


def _faas_run(corpus, stream, *, outage=False, tierless=False):
    kwargs = {}
    if outage:
        kwargs["tier_fault_plan"] = FaultPlan(
            seed="bench-faas-outage",
            outages=(OUTAGE,),
            targets=(FAAS_TIER_ENDPOINT,),
        )
        kwargs["ha_replicas"] = 2
    bed = make_faas_testbed(bandwidth_mbps=200.0, seed="bench-faas", **kwargs)
    publish_images(bed, _referenced_images(corpus, stream), convert=True)
    if tierless:
        bed.faas.blacklisted = True  # every fetch takes the registry
    platform = FaasPlatform(
        bed, bed.faas, nodes=NODES, keep_warm_s=DURATION_S / 3,
        seed="bench-faas",
    )
    return platform.run(stream)


def test_ext_faas_spike_tails(benchmark, corpus):
    """Cold/warm latency tails: steady vs. 10x spike vs. mid-spike outage.

    The robustness headline: under the spike — even with the shared tier
    dark for part of it — no invocation fails, no container filesystem
    diverges, and the tier never double-fetches a healthy fingerprint.
    """

    def sweep():
        steady = _stream(corpus)
        spiky = _stream(corpus, bursts=(SPIKE,))
        return {
            "steady": _faas_run(corpus, steady),
            "spike": _faas_run(corpus, spiky),
            "spike+outage": _faas_run(corpus, spiky, outage=True),
        }

    grid = run_once(benchmark, sweep)

    print("\nExtension — FaaS cold-start tails under invocation spikes")
    print(
        format_table(
            ["Scenario", "Inv", "Cold", "Warm", "Cold p50 (s)",
             "Cold p99.9 (s)", "Sheds", "Coalesced", "Fallbacks"],
            [
                (
                    scenario,
                    str(run.invocations),
                    str(run.cold_starts),
                    str(run.warm_starts),
                    f"{run.cold_p50_s:.2f}",
                    f"{run.cold_p999_s:.2f}",
                    str(run.fabric["tier_sheds"]),
                    str(run.fabric["tier_coalesced"]),
                    str(run.fabric["registry_fallbacks"]),
                )
                for scenario, run in grid.items()
            ],
        )
    )
    for scenario, run in grid.items():
        assert run.failures == 0, scenario
        assert run.degraded == 0, scenario
        assert run.digest_conflicts == 0, scenario
        assert run.fabric["duplicate_upstream_fetches"] == 0, scenario
    # The spike produced more invocations than steady state...
    assert grid["spike"].invocations > grid["steady"].invocations
    # ...and the outage actually bit (failovers or breaker skips).
    outage = grid["spike+outage"].fabric
    assert outage["tier_failovers"] + outage["breaker_skips"] > 0
    # Determinism guard: replay the adversarial cell field-for-field.
    replay = _faas_run(corpus, _stream(corpus, bursts=(SPIKE,)), outage=True)
    assert replay.as_dict() == grid["spike+outage"].as_dict()


def test_ext_faas_egress_reduction(benchmark, corpus):
    """Registry egress with the shared tier vs. a tierless fleet.

    The identical spiky stream replayed both ways: the tier must absorb
    a meaningful share of WAN egress (many nodes cold-start the same hot
    images) without changing a single container filesystem.
    """

    def sweep():
        spiky = _stream(corpus, bursts=(SPIKE,))
        return {
            "tierless": _faas_run(corpus, spiky, tierless=True),
            "tiered": _faas_run(corpus, spiky),
        }

    grid = run_once(benchmark, sweep)

    tierless, tiered = grid["tierless"], grid["tiered"]
    reduction = 1.0 - tiered.wan_egress_bytes / tierless.wan_egress_bytes
    print("\nExtension — FaaS shared-tier registry-egress reduction")
    print(
        format_table(
            ["Topology", "WAN MB", "Tier hits", "Saved MB", "Cold p50 (s)"],
            [
                (
                    name,
                    f"{run.wan_egress_bytes / 1e6:.2f}",
                    str(run.fabric["tier_hits"]),
                    f"{run.fabric['egress_saved_bytes'] / 1e6:.2f}",
                    f"{run.cold_p50_s:.2f}",
                )
                for name, run in grid.items()
            ],
        )
    )
    print(f"egress reduction: {pct(reduction)}")
    for run in grid.values():
        assert run.failures == 0
        assert run.digest_conflicts == 0
    # Same stream, same placement: identical fs digests either way.
    assert tiered.fs_digests == tierless.fs_digests
    assert reduction > 0.10, reduction
